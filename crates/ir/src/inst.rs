//! Instructions and opcodes.

use crate::types::{BlockId, RegClass, VReg};
use std::fmt;

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 1 byte (zero-extended on load).
    B1,
    /// 4 bytes (sign-extended on load).
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Operation performed by an [`Inst`].
///
/// Operand conventions (see [`Inst`]): register operands live in
/// `Inst::args`, integer immediates in `Inst::imm`, float immediates in
/// `Inst::fimm`, and branch targets in `Inst::target`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    // ---- integer ALU (dst: Int) ----
    /// `dst = args[0] + args[1]`
    Add,
    /// `dst = args[0] - args[1]`
    Sub,
    /// `dst = args[0] * args[1]`
    Mul,
    /// `dst = args[0] / args[1]` (wrapping; division by zero yields 0)
    Div,
    /// `dst = args[0] % args[1]` (remainder by zero yields 0)
    Rem,
    /// `dst = args[0] & args[1]`
    And,
    /// `dst = args[0] | args[1]`
    Or,
    /// `dst = args[0] ^ args[1]`
    Xor,
    /// `dst = args[0] << (args[1] & 63)`
    Shl,
    /// `dst = args[0] >> (args[1] & 63)` (arithmetic)
    Shr,
    /// `dst = args[0] + imm`
    AddI,
    /// `dst = args[0] * imm`
    MulI,
    /// `dst = args[0] & imm`
    AndI,
    /// `dst = args[0] << (imm & 63)`
    ShlI,
    /// `dst = args[0] >> (imm & 63)` (arithmetic)
    ShrI,
    /// `dst = imm`
    MovI,
    /// `dst = args[0]`
    Mov,
    /// `dst = -args[0]`
    Neg,
    /// `dst = |args[0]|`
    Abs,
    /// `dst = min(args[0], args[1])`
    Min,
    /// `dst = max(args[0], args[1])`
    Max,
    /// `dst = if args[0] (pred) { args[1] } else { args[2] }` — integer select
    Sel,

    // ---- integer comparisons (dst: Pred) ----
    /// `dst = args[0] == args[1]`
    CmpEq,
    /// `dst = args[0] != args[1]`
    CmpNe,
    /// `dst = args[0] < args[1]` (signed)
    CmpLt,
    /// `dst = args[0] <= args[1]` (signed)
    CmpLe,
    /// `dst = args[0] == imm`
    CmpEqI,
    /// `dst = args[0] < imm` (signed)
    CmpLtI,
    /// `dst = args[0] > imm` (signed)
    CmpGtI,

    // ---- predicate ops (dst: Pred) ----
    /// `dst = args[0] & args[1]` (predicates)
    PAnd,
    /// `dst = args[0] | args[1]` (predicates)
    POr,
    /// `dst = !args[0]` (predicate)
    PNot,
    /// `dst = imm != 0` (predicate constant)
    PMovI,
    /// `dst = args[0]` (predicate copy)
    PMov,
    /// `dst (Int) = if args[0] (pred) { 1 } else { 0 }`
    P2I,
    /// `dst (Pred) = args[0] (int) != 0`
    I2P,

    // ---- floating point (dst: Float) ----
    /// `dst = args[0] + args[1]`
    FAdd,
    /// `dst = args[0] - args[1]`
    FSub,
    /// `dst = args[0] * args[1]`
    FMul,
    /// `dst = args[0] / args[1]` (division by zero yields 0.0)
    FDiv,
    /// `dst = sqrt(|args[0]|)`
    FSqrt,
    /// `dst = |args[0]|`
    FAbs,
    /// `dst = -args[0]`
    FNeg,
    /// `dst = min(args[0], args[1])`
    FMin,
    /// `dst = max(args[0], args[1])`
    FMax,
    /// `dst = fimm`
    FMovI,
    /// `dst = args[0]`
    FMov,
    /// `dst = if args[0] (pred) { args[1] } else { args[2] }` — float select
    FSel,

    // ---- float comparisons (dst: Pred) ----
    /// `dst = args[0] == args[1]`
    FCmpEq,
    /// `dst = args[0] < args[1]`
    FCmpLt,
    /// `dst = args[0] <= args[1]`
    FCmpLe,

    // ---- conversions ----
    /// `dst (Float) = args[0] (Int) as f64`
    I2F,
    /// `dst (Int) = args[0] (Float) as i64` (truncating; saturates)
    F2I,
    /// `dst (Int) = bit pattern of args[0] (Float)` — lossless bitcast,
    /// used by the calling convention for float returns.
    FBits,
    /// `dst (Float) = f64 from the bit pattern of args[0] (Int)`.
    BitsF,

    // ---- memory (address = args[0] + imm) ----
    /// Integer load of the given width; B1 zero-extends, B4 sign-extends.
    Ld(Width),
    /// Integer store of the given width; value = `args[1]`.
    St(Width),
    /// Float load (8 bytes).
    FLd,
    /// Float store (8 bytes); value = `args[1]` (Float).
    FSt,
    /// Non-binding cache prefetch of the line containing the address.
    Prefetch,

    // ---- control ----
    /// Unconditional jump to `target`.
    Br,
    /// Conditional jump to `target` if `args[0]` (Pred) is true, else fall
    /// through to the next instruction.
    CBr,
    /// Return from the function; optional return value in `args[0]`.
    Ret,
    /// Call function `imm` (as a `FuncId` index); args are the call
    /// arguments; `dst` receives the return value if present.
    Call,
    /// Opaque side-effecting call (a compiler *hazard*): reads `args[0]`,
    /// writes a derived value to a program scratch slot selected by `imm`,
    /// and returns a value in `dst`. Not inlinable, not speculatable.
    UnsafeCall,
}

impl Opcode {
    /// Is this a control transfer instruction?
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::CBr | Opcode::Ret | Opcode::Call | Opcode::UnsafeCall
        )
    }

    /// Is this a branch (changes the PC to `target`)?
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Br | Opcode::CBr)
    }

    /// Does this opcode read memory?
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld(_) | Opcode::FLd)
    }

    /// Does this opcode write memory?
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St(_) | Opcode::FSt)
    }

    /// Does this opcode access memory at all (including prefetches)?
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store() || matches!(self, Opcode::Prefetch)
    }

    /// Expected register classes of the operands in `args`, or `None` for
    /// variable-arity opcodes (`Ret`, `Call`).
    pub fn arg_classes(self) -> Option<&'static [RegClass]> {
        use Opcode::*;
        use RegClass::*;
        Some(match self {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max => &[Int, Int],
            AddI | MulI | AndI | ShlI | ShrI | Mov | Neg | Abs | I2F | I2P | BitsF => &[Int],
            MovI => &[],
            Sel => &[Pred, Int, Int],
            CmpEq | CmpNe | CmpLt | CmpLe => &[Int, Int],
            CmpEqI | CmpLtI | CmpGtI => &[Int],
            PAnd | POr => &[Pred, Pred],
            PNot | PMov | P2I => &[Pred],
            PMovI => &[],
            FAdd | FSub | FMul | FDiv | FMin | FMax => &[Float, Float],
            FSqrt | FAbs | FNeg | FMov | F2I | FBits => &[Float],
            FMovI => &[],
            FSel => &[Pred, Float, Float],
            FCmpEq | FCmpLt | FCmpLe => &[Float, Float],
            Ld(_) => &[Int],
            St(_) => &[Int, Int],
            FLd => &[Int],
            FSt => &[Int, Float],
            Prefetch => &[Int],
            Br => &[],
            CBr => &[Pred],
            UnsafeCall => &[Int],
            Ret | Call => return None,
        })
    }

    /// Register class produced in `dst`, if the opcode defines a register.
    pub fn dst_class(self) -> Option<RegClass> {
        use Opcode::*;
        Some(match self {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | AddI | MulI | AndI
            | ShlI | ShrI | MovI | Mov | Neg | Abs | Min | Max | Sel | P2I | F2I | FBits
            | Ld(_) | Call | UnsafeCall => RegClass::Int,
            FAdd | FSub | FMul | FDiv | FSqrt | FAbs | FNeg | FMin | FMax | FMovI | FMov | FSel
            | I2F | BitsF | FLd => RegClass::Float,
            CmpEq | CmpNe | CmpLt | CmpLe | CmpEqI | CmpLtI | CmpGtI | PAnd | POr | PNot
            | PMovI | PMov | I2P | FCmpEq | FCmpLt | FCmpLe => RegClass::Pred,
            St(_) | FSt | Prefetch | Br | CBr | Ret => return None,
        })
    }

    /// Short mnemonic used by the IR printer.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            AddI => "addi",
            MulI => "muli",
            AndI => "andi",
            ShlI => "shli",
            ShrI => "shri",
            MovI => "movi",
            Mov => "mov",
            Neg => "neg",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Sel => "sel",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpEqI => "cmpeqi",
            CmpLtI => "cmplti",
            CmpGtI => "cmpgti",
            PAnd => "pand",
            POr => "por",
            PNot => "pnot",
            PMovI => "pmovi",
            PMov => "pmov",
            P2I => "p2i",
            I2P => "i2p",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FSqrt => "fsqrt",
            FAbs => "fabs",
            FNeg => "fneg",
            FMin => "fmin",
            FMax => "fmax",
            FMovI => "fmovi",
            FMov => "fmov",
            FSel => "fsel",
            FCmpEq => "fcmpeq",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            I2F => "i2f",
            F2I => "f2i",
            FBits => "fbits",
            BitsF => "bitsf",
            Ld(Width::B1) => "ld1",
            Ld(Width::B4) => "ld4",
            Ld(Width::B8) => "ld8",
            St(Width::B1) => "st1",
            St(Width::B4) => "st4",
            St(Width::B8) => "st8",
            FLd => "fld",
            FSt => "fst",
            Prefetch => "prefetch",
            Br => "br",
            CBr => "cbr",
            Ret => "ret",
            Call => "call",
            UnsafeCall => "ucall",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single IR instruction.
///
/// Every instruction may be guarded by a predicate register (`pred`); a
/// guarded instruction whose predicate evaluates to `false` is nullified
/// (it neither writes its destination nor touches memory nor transfers
/// control). This is the EPIC predication model the hyperblock case study
/// relies on.
#[derive(Clone, PartialEq, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register, for opcodes that define one.
    pub dst: Option<VReg>,
    /// Register operands; interpretation is per-opcode (see [`Opcode`]).
    pub args: Vec<VReg>,
    /// Integer immediate (offset, constant, callee index, …).
    pub imm: i64,
    /// Floating-point immediate.
    pub fimm: f64,
    /// Branch target for `Br`/`CBr`.
    pub target: Option<BlockId>,
    /// Optional guard predicate.
    pub pred: Option<VReg>,
}

impl Inst {
    /// Create an instruction with all optional fields empty.
    pub fn new(op: Opcode) -> Self {
        Inst {
            op,
            dst: None,
            args: Vec::new(),
            imm: 0,
            fimm: 0.0,
            target: None,
            pred: None,
        }
    }

    /// Builder-style destination setter.
    pub fn dst(mut self, d: VReg) -> Self {
        self.dst = Some(d);
        self
    }

    /// Builder-style operand setter.
    pub fn args(mut self, a: &[VReg]) -> Self {
        self.args = a.to_vec();
        self
    }

    /// Builder-style integer-immediate setter.
    pub fn imm(mut self, v: i64) -> Self {
        self.imm = v;
        self
    }

    /// Builder-style float-immediate setter.
    pub fn fimm(mut self, v: f64) -> Self {
        self.fimm = v;
        self
    }

    /// Builder-style branch-target setter.
    pub fn target(mut self, t: BlockId) -> Self {
        self.target = Some(t);
        self
    }

    /// Builder-style guard-predicate setter.
    pub fn guarded(mut self, p: VReg) -> Self {
        self.pred = Some(p);
        self
    }

    /// All registers read by this instruction (operands + guard).
    pub fn reads(&self) -> impl Iterator<Item = VReg> + '_ {
        self.args.iter().copied().chain(self.pred)
    }

    /// Is this instruction a potential *hazard* for aggressive optimization
    /// (per the paper §5.1: pointer dereferences and opaque calls)?
    pub fn is_hazard(&self) -> bool {
        matches!(self.op, Opcode::UnsafeCall) || self.op.is_store()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "({p}) ")?;
        }
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for a in &self.args {
            write!(f, " {a}")?;
        }
        match self.op {
            Opcode::MovI
            | Opcode::AddI
            | Opcode::MulI
            | Opcode::AndI
            | Opcode::ShlI
            | Opcode::ShrI
            | Opcode::CmpEqI
            | Opcode::CmpLtI
            | Opcode::CmpGtI
            | Opcode::PMovI
            | Opcode::Call
            | Opcode::UnsafeCall => write!(f, " #{}", self.imm)?,
            Opcode::FMovI => write!(f, " #{}", self.fimm)?,
            Opcode::Ld(_) | Opcode::St(_) | Opcode::FLd | Opcode::FSt | Opcode::Prefetch
                if self.imm != 0 =>
            {
                write!(f, " +{}", self.imm)?;
            }
            _ => {}
        }
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::Br.is_control());
        assert!(Opcode::CBr.is_branch());
        assert!(!Opcode::Add.is_control());
        assert!(Opcode::Ld(Width::B8).is_load());
        assert!(Opcode::FSt.is_store());
        assert!(Opcode::Prefetch.is_mem());
        assert!(!Opcode::Prefetch.is_load());
    }

    #[test]
    fn dst_classes() {
        assert_eq!(Opcode::Add.dst_class(), Some(RegClass::Int));
        assert_eq!(Opcode::FAdd.dst_class(), Some(RegClass::Float));
        assert_eq!(Opcode::CmpLt.dst_class(), Some(RegClass::Pred));
        assert_eq!(Opcode::St(Width::B4).dst_class(), None);
        assert_eq!(Opcode::Br.dst_class(), None);
    }

    #[test]
    fn display_includes_guard_and_target() {
        let i = Inst::new(Opcode::CBr)
            .args(&[VReg(1)])
            .target(BlockId(3))
            .guarded(VReg(2));
        let s = i.to_string();
        assert!(s.contains("(v2)"), "{s}");
        assert!(s.contains("-> b3"), "{s}");
    }

    #[test]
    fn reads_include_guard() {
        let i = Inst::new(Opcode::Add)
            .dst(VReg(0))
            .args(&[VReg(1), VReg(2)])
            .guarded(VReg(3));
        let reads: Vec<_> = i.reads().collect();
        assert_eq!(reads, vec![VReg(1), VReg(2), VReg(3)]);
    }

    #[test]
    fn hazards() {
        assert!(Inst::new(Opcode::UnsafeCall).is_hazard());
        assert!(Inst::new(Opcode::St(Width::B8)).is_hazard());
        assert!(!Inst::new(Opcode::Ld(Width::B8)).is_hazard());
    }
}
