//! Reference interpreter and profiler.
//!
//! Executes a [`Program`] directly on the IR, defining the semantic ground
//! truth for the compiler and the cycle simulator. Optionally collects the
//! execution [`Profile`] (block/edge counts, branch predictability) that the
//! optimization passes consume.

use crate::inst::{Opcode, Width};
use crate::profile::{BranchStats, FuncProfile, Profile};
use crate::program::{Program, UNSAFE_SCRATCH_BASE};
use crate::types::{BlockId, FuncId, RegClass, VReg};
use std::collections::HashMap;
use std::fmt;

/// Interpreter failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The configured step limit was exceeded (probable infinite loop).
    StepLimit(u64),
    /// A memory access fell outside the program's memory image.
    OutOfBounds {
        /// The faulting byte address.
        addr: i64,
    },
    /// The requested entry function does not exist.
    NoEntry(String),
    /// Call stack exceeded the hard limit.
    StackOverflow,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit(n) => write!(f, "step limit of {n} exceeded"),
            InterpError::OutOfBounds { addr } => write!(f, "memory access out of bounds at {addr}"),
            InterpError::NoEntry(n) => write!(f, "no entry function named {n}"),
            InterpError::StackOverflow => write!(f, "call stack overflow"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Configuration for a run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Integer arguments passed to the entry function's parameters.
    pub args: Vec<i64>,
    /// Maximum dynamic instructions before aborting.
    pub max_steps: u64,
    /// Collect a [`Profile`]?
    pub profile: bool,
    /// Entry function name (`main` or function 0 by default).
    pub entry: Option<String>,
    /// Initial memory image override (defaults to
    /// [`Program::initial_memory`]).
    pub memory: Option<Vec<u8>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            args: Vec::new(),
            max_steps: crate::budget::DEFAULT_MAX_STEPS,
            profile: false,
            entry: None,
            memory: None,
        }
    }
}

/// Result of a successful run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Value returned by the entry function (0 if it returned nothing).
    pub ret: i64,
    /// Dynamic instructions executed (including nullified predicated ones).
    pub steps: u64,
    /// Execution profile, if requested.
    pub profile: Option<Profile>,
    /// Final memory image.
    pub memory: Vec<u8>,
}

/// Saturating `f64 -> i64` conversion shared by interpreter and simulator.
#[inline]
pub fn f2i_sat(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else {
        v as i64 // Rust float->int casts saturate
    }
}

/// Deterministic semantics of [`Opcode::UnsafeCall`], shared by interpreter
/// and simulator: mixes the argument with the old scratch value.
/// Returns `(new_scratch, result)`.
#[inline]
pub fn unsafe_call_semantics(old: i64, arg: i64, site: i64) -> (i64, i64) {
    let mixed = old
        .wrapping_mul(6364136223846793005)
        .wrapping_add(arg ^ site.wrapping_mul(0x9E3779B97F4A7C15u64 as i64));
    let ret = (mixed >> 17) ^ mixed;
    (mixed, ret)
}

/// Scratch-slot address used by an `UnsafeCall` with selector `site`.
#[inline]
pub fn unsafe_call_slot(site: i64) -> i64 {
    UNSAFE_SCRATCH_BASE + (site.rem_euclid(64)) * 8
}

struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    ints: Vec<i64>,
    floats: Vec<f64>,
    preds: Vec<bool>,
    ret_dst: Option<VReg>,
}

fn new_frame(prog: &Program, func: FuncId, ret_dst: Option<VReg>) -> Frame {
    let f = prog.func(func);
    let n = f.num_vregs();
    Frame {
        func,
        block: f.entry,
        ip: 0,
        ints: vec![0; n],
        floats: vec![0.0; n],
        preds: vec![false; n],
        ret_dst,
    }
}

/// Read `w` bytes at `addr` (shared by interpreter and simulator).
///
/// # Errors
/// Returns [`InterpError::OutOfBounds`] on an out-of-range access.
#[inline]
pub fn read_mem(mem: &[u8], addr: i64, w: Width) -> Result<i64, InterpError> {
    let a = addr as usize;
    if addr < 0 || a + w.bytes() > mem.len() {
        return Err(InterpError::OutOfBounds { addr });
    }
    Ok(match w {
        Width::B1 => mem[a] as i64,
        Width::B4 => i32::from_le_bytes(mem[a..a + 4].try_into().unwrap()) as i64,
        Width::B8 => i64::from_le_bytes(mem[a..a + 8].try_into().unwrap()),
    })
}

/// Write `w` bytes at `addr` (shared by interpreter and simulator).
///
/// # Errors
/// Returns [`InterpError::OutOfBounds`] on an out-of-range access.
#[inline]
pub fn write_mem(mem: &mut [u8], addr: i64, w: Width, v: i64) -> Result<(), InterpError> {
    let a = addr as usize;
    if addr < 0 || a + w.bytes() > mem.len() {
        return Err(InterpError::OutOfBounds { addr });
    }
    match w {
        Width::B1 => mem[a] = v as u8,
        Width::B4 => mem[a..a + 4].copy_from_slice(&(v as i32).to_le_bytes()),
        Width::B8 => mem[a..a + 8].copy_from_slice(&v.to_le_bytes()),
    }
    Ok(())
}

const MAX_STACK: usize = 1024;

/// Execute `prog` under `cfg`.
///
/// # Errors
/// Returns an [`InterpError`] on step-limit exhaustion, out-of-bounds memory
/// access, a missing entry function, or call-stack overflow.
pub fn run(prog: &Program, cfg: &RunConfig) -> Result<Outcome, InterpError> {
    let entry = match &cfg.entry {
        Some(name) => prog
            .func_by_name(name)
            .ok_or_else(|| InterpError::NoEntry(name.clone()))?,
        None => prog.entry_func(),
    };
    let mut mem = match &cfg.memory {
        Some(m) => m.clone(),
        None => prog.initial_memory(),
    };

    let mut profile = if cfg.profile {
        Some(Profile {
            funcs: prog
                .funcs
                .iter()
                .map(|f| FuncProfile {
                    block_counts: vec![0; f.blocks.len()],
                    ..Default::default()
                })
                .collect(),
            dyn_insts: 0,
        })
    } else {
        None
    };
    // 2-bit saturating counters per static branch site, shared across calls.
    let mut predictor: HashMap<(u32, u32, u32), u8> = HashMap::new();

    let mut stack: Vec<Frame> = Vec::new();
    let mut frame = new_frame(prog, entry, None);
    for (i, p) in prog.func(entry).params.iter().enumerate() {
        let v = cfg.args.get(i).copied().unwrap_or(0);
        match prog.func(entry).class_of(*p) {
            RegClass::Int => frame.ints[p.index()] = v,
            RegClass::Float => frame.floats[p.index()] = v as f64,
            RegClass::Pred => frame.preds[p.index()] = v != 0,
        }
    }
    if let Some(pr) = &mut profile {
        pr.funcs[entry.index()].block_counts[frame.block.index()] += 1;
    }

    let mut steps: u64 = 0;
    let ret_val: i64;

    'outer: loop {
        let func = prog.func(frame.func);
        let block = func.block(frame.block);
        debug_assert!(frame.ip < block.insts.len(), "fell off a block");
        let inst = &block.insts[frame.ip];
        steps += 1;
        if steps > cfg.max_steps {
            return Err(InterpError::StepLimit(cfg.max_steps));
        }

        // Guard predicate: nullified instructions advance the PC only.
        if let Some(p) = inst.pred {
            if !frame.preds[p.index()] {
                frame.ip += 1;
                continue;
            }
        }

        macro_rules! iarg {
            ($i:expr) => {
                frame.ints[inst.args[$i].index()]
            };
        }
        macro_rules! farg {
            ($i:expr) => {
                frame.floats[inst.args[$i].index()]
            };
        }
        macro_rules! parg {
            ($i:expr) => {
                frame.preds[inst.args[$i].index()]
            };
        }
        macro_rules! seti {
            ($v:expr) => {
                if let Some(d) = inst.dst {
                    frame.ints[d.index()] = $v;
                }
            };
        }
        macro_rules! setf {
            ($v:expr) => {
                if let Some(d) = inst.dst {
                    frame.floats[d.index()] = $v;
                }
            };
        }
        macro_rules! setp {
            ($v:expr) => {
                if let Some(d) = inst.dst {
                    frame.preds[d.index()] = $v;
                }
            };
        }

        let mut next_block: Option<BlockId> = None;
        match inst.op {
            Opcode::Add => seti!(iarg!(0).wrapping_add(iarg!(1))),
            Opcode::Sub => seti!(iarg!(0).wrapping_sub(iarg!(1))),
            Opcode::Mul => seti!(iarg!(0).wrapping_mul(iarg!(1))),
            Opcode::Div => {
                let b = iarg!(1);
                seti!(if b == 0 { 0 } else { iarg!(0).wrapping_div(b) })
            }
            Opcode::Rem => {
                let b = iarg!(1);
                seti!(if b == 0 { 0 } else { iarg!(0).wrapping_rem(b) })
            }
            Opcode::And => seti!(iarg!(0) & iarg!(1)),
            Opcode::Or => seti!(iarg!(0) | iarg!(1)),
            Opcode::Xor => seti!(iarg!(0) ^ iarg!(1)),
            Opcode::Shl => seti!(iarg!(0).wrapping_shl(iarg!(1) as u32 & 63)),
            Opcode::Shr => seti!(iarg!(0).wrapping_shr(iarg!(1) as u32 & 63)),
            Opcode::AddI => seti!(iarg!(0).wrapping_add(inst.imm)),
            Opcode::MulI => seti!(iarg!(0).wrapping_mul(inst.imm)),
            Opcode::AndI => seti!(iarg!(0) & inst.imm),
            Opcode::ShlI => seti!(iarg!(0).wrapping_shl(inst.imm as u32 & 63)),
            Opcode::ShrI => seti!(iarg!(0).wrapping_shr(inst.imm as u32 & 63)),
            Opcode::MovI => seti!(inst.imm),
            Opcode::Mov => seti!(iarg!(0)),
            Opcode::Neg => seti!(iarg!(0).wrapping_neg()),
            Opcode::Abs => seti!(iarg!(0).wrapping_abs()),
            Opcode::Min => seti!(iarg!(0).min(iarg!(1))),
            Opcode::Max => seti!(iarg!(0).max(iarg!(1))),
            Opcode::Sel => seti!(if parg!(0) { iarg!(1) } else { iarg!(2) }),

            Opcode::CmpEq => setp!(iarg!(0) == iarg!(1)),
            Opcode::CmpNe => setp!(iarg!(0) != iarg!(1)),
            Opcode::CmpLt => setp!(iarg!(0) < iarg!(1)),
            Opcode::CmpLe => setp!(iarg!(0) <= iarg!(1)),
            Opcode::CmpEqI => setp!(iarg!(0) == inst.imm),
            Opcode::CmpLtI => setp!(iarg!(0) < inst.imm),
            Opcode::CmpGtI => setp!(iarg!(0) > inst.imm),

            Opcode::PAnd => setp!(parg!(0) && parg!(1)),
            Opcode::POr => setp!(parg!(0) || parg!(1)),
            Opcode::PNot => setp!(!parg!(0)),
            Opcode::PMovI => setp!(inst.imm != 0),
            Opcode::PMov => setp!(parg!(0)),
            Opcode::P2I => seti!(if parg!(0) { 1 } else { 0 }),
            Opcode::I2P => setp!(iarg!(0) != 0),

            Opcode::FAdd => setf!(farg!(0) + farg!(1)),
            Opcode::FSub => setf!(farg!(0) - farg!(1)),
            Opcode::FMul => setf!(farg!(0) * farg!(1)),
            Opcode::FDiv => {
                let b = farg!(1);
                setf!(if b == 0.0 { 0.0 } else { farg!(0) / b })
            }
            Opcode::FSqrt => setf!(farg!(0).abs().sqrt()),
            Opcode::FAbs => setf!(farg!(0).abs()),
            Opcode::FNeg => setf!(-farg!(0)),
            Opcode::FMin => setf!(farg!(0).min(farg!(1))),
            Opcode::FMax => setf!(farg!(0).max(farg!(1))),
            Opcode::FMovI => setf!(inst.fimm),
            Opcode::FMov => setf!(farg!(0)),
            Opcode::FSel => setf!(if parg!(0) { farg!(1) } else { farg!(2) }),

            Opcode::FCmpEq => setp!(farg!(0) == farg!(1)),
            Opcode::FCmpLt => setp!(farg!(0) < farg!(1)),
            Opcode::FCmpLe => setp!(farg!(0) <= farg!(1)),

            Opcode::I2F => setf!(iarg!(0) as f64),
            Opcode::F2I => seti!(f2i_sat(farg!(0))),
            Opcode::FBits => seti!(farg!(0).to_bits() as i64),
            Opcode::BitsF => setf!(f64::from_bits(iarg!(0) as u64)),

            Opcode::Ld(w) => {
                let v = read_mem(&mem, iarg!(0).wrapping_add(inst.imm), w)?;
                seti!(v);
            }
            Opcode::St(w) => {
                write_mem(&mut mem, iarg!(0).wrapping_add(inst.imm), w, iarg!(1))?;
            }
            Opcode::FLd => {
                let bits = read_mem(&mem, iarg!(0).wrapping_add(inst.imm), Width::B8)?;
                setf!(f64::from_bits(bits as u64));
            }
            Opcode::FSt => {
                let bits = farg!(1).to_bits() as i64;
                write_mem(&mut mem, iarg!(0).wrapping_add(inst.imm), Width::B8, bits)?;
            }
            Opcode::Prefetch => {} // architecturally a no-op

            Opcode::Br => next_block = inst.target,
            Opcode::CBr => {
                let taken = parg!(0);
                if let Some(pr) = &mut profile {
                    let key = (frame.func.0, frame.block.0, frame.ip as u32);
                    let ctr = predictor.entry(key).or_insert(1); // weakly not-taken
                    let predicted_taken = *ctr >= 2;
                    *ctr = match (taken, *ctr) {
                        (true, c) => (c + 1).min(3),
                        (false, c) => c.saturating_sub(1),
                    };
                    let fp = &mut pr.funcs[frame.func.index()];
                    let st = fp
                        .branches
                        .entry((frame.block, frame.ip))
                        .or_insert_with(BranchStats::default);
                    st.executed += 1;
                    if taken {
                        st.taken += 1;
                    }
                    if predicted_taken == taken {
                        st.correct += 1;
                    }
                }
                if taken {
                    next_block = inst.target;
                }
            }
            Opcode::Ret => {
                let v = if inst.args.is_empty() { 0 } else { iarg!(0) };
                match stack.pop() {
                    None => {
                        ret_val = v;
                        break 'outer;
                    }
                    Some(mut parent) => {
                        if let Some(d) = frame.ret_dst {
                            parent.ints[d.index()] = v;
                        }
                        parent.ip += 1;
                        frame = parent;
                        continue 'outer;
                    }
                }
            }
            Opcode::Call => {
                if stack.len() >= MAX_STACK {
                    return Err(InterpError::StackOverflow);
                }
                let callee = FuncId(inst.imm as u32);
                let mut callee_frame = new_frame(prog, callee, inst.dst);
                let cf = prog.func(callee);
                for (ai, p) in cf.params.iter().enumerate() {
                    match cf.class_of(*p) {
                        RegClass::Int => callee_frame.ints[p.index()] = iarg!(ai),
                        RegClass::Float => callee_frame.floats[p.index()] = farg!(ai),
                        RegClass::Pred => callee_frame.preds[p.index()] = parg!(ai),
                    }
                }
                if let Some(pr) = &mut profile {
                    pr.funcs[callee.index()].block_counts[callee_frame.block.index()] += 1;
                }
                stack.push(frame);
                frame = callee_frame;
                continue 'outer;
            }
            Opcode::UnsafeCall => {
                let slot = unsafe_call_slot(inst.imm);
                let old = read_mem(&mem, slot, Width::B8)?;
                let (new, ret) = unsafe_call_semantics(old, iarg!(0), inst.imm);
                write_mem(&mut mem, slot, Width::B8, new)?;
                seti!(ret);
            }
        }

        match next_block {
            Some(t) => {
                if let Some(pr) = &mut profile {
                    let fp = &mut pr.funcs[frame.func.index()];
                    *fp.edge_counts.entry((frame.block, t)).or_insert(0) += 1;
                    fp.block_counts[t.index()] += 1;
                }
                frame.block = t;
                frame.ip = 0;
            }
            None => frame.ip += 1,
        }
    }

    if let Some(pr) = &mut profile {
        pr.dyn_insts = steps;
    }
    Ok(Outcome {
        ret: ret_val,
        steps,
        profile,
        memory: mem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::program::{GlobalData, GlobalInit};
    use crate::types::RegClass;

    fn run_main(prog: &Program) -> Outcome {
        run(prog, &RunConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.movi(6);
        let b = fb.movi(7);
        let c = fb.mul(a, b);
        fb.ret(Some(c));
        let mut p = Program::new();
        p.add_function(fb.finish());
        assert_eq!(run_main(&p).ret, 42);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.movi(10);
        let z = fb.movi(0);
        let d = fb.div(a, z);
        let r = fb.rem(a, z);
        let s = fb.add(d, r);
        fb.ret(Some(s));
        let mut p = Program::new();
        p.add_function(fb.finish());
        assert_eq!(run_main(&p).ret, 0);
    }

    #[test]
    fn loop_sums_range() {
        // sum 0..10 = 45
        let mut fb = FunctionBuilder::new("main");
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let acc = fb.new_vreg(RegClass::Int);
        let i = fb.new_vreg(RegClass::Int);
        let z = fb.movi(0);
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(acc).args(&[z]));
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(i).args(&[z]));
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lti(i, 10);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(acc, i);
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(acc).args(&[acc2]));
        let i2 = fb.addi(i, 1);
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(i).args(&[i2]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        let mut p = Program::new();
        p.add_function(fb.finish());
        assert_eq!(run_main(&p).ret, 45);
    }

    #[test]
    fn memory_roundtrip_and_widths() {
        let mut prog = Program::new();
        let mut fb = FunctionBuilder::new("main");
        let addr = fb.movi(crate::program::GLOBAL_BASE);
        let v = fb.movi(-2);
        fb.st4(addr, v, 0);
        let back4 = fb.ld4(addr, 0);
        fb.st1(addr, v, 8);
        let back1 = fb.ld1(addr, 8); // zero-extended: 254
        let s = fb.add(back4, back1);
        fb.ret(Some(s));
        prog.add_global(GlobalData {
            name: "g".into(),
            size: 16,
            init: GlobalInit::Zero,
        });
        prog.add_function(fb.finish());
        assert_eq!(run_main(&prog).ret, -2 + 254);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut fb = FunctionBuilder::new("main");
        let addr = fb.movi(-8);
        let v = fb.ld8(addr, 0);
        fb.ret(Some(v));
        let mut p = Program::new();
        p.add_function(fb.finish());
        assert!(matches!(
            run(&p, &RunConfig::default()),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn step_limit_detected() {
        let mut fb = FunctionBuilder::new("main");
        fb.br(BlockId(0));
        let mut p = Program::new();
        p.add_function(fb.finish());
        let cfg = RunConfig {
            max_steps: 100,
            ..Default::default()
        };
        assert!(matches!(run(&p, &cfg), Err(InterpError::StepLimit(100))));
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut callee = FunctionBuilder::new("sq");
        let x = callee.param(RegClass::Int);
        let y = callee.mul(x, x);
        callee.ret(Some(y));
        let mut main = FunctionBuilder::new("main");
        let a = main.movi(9);
        let r = main.call(0, &[a]);
        main.ret(Some(r));
        let mut p = Program::new();
        p.add_function(callee.finish());
        p.add_function(main.finish());
        assert_eq!(run_main(&p).ret, 81);
    }

    #[test]
    fn predicated_instruction_nullified() {
        let mut fb = FunctionBuilder::new("main");
        let one = fb.movi(1);
        let two = fb.movi(2);
        let pf = fb.cmp_lt(two, one); // false
        let pt = fb.cmp_lt(one, two); // true
        let out = fb.movi(0);
        fb.push(
            crate::inst::Inst::new(Opcode::MovI)
                .dst(out)
                .imm(10)
                .guarded(pf),
        );
        fb.push(
            crate::inst::Inst::new(Opcode::MovI)
                .dst(out)
                .imm(20)
                .guarded(pt),
        );
        fb.ret(Some(out));
        let mut p = Program::new();
        p.add_function(fb.finish());
        assert_eq!(run_main(&p).ret, 20);
    }

    #[test]
    fn unsafe_call_is_deterministic_and_side_effecting() {
        let build = || {
            let mut fb = FunctionBuilder::new("main");
            let a = fb.movi(5);
            let r1 = fb.unsafe_call(3, a);
            let r2 = fb.unsafe_call(3, a); // second call sees updated scratch
            let d = fb.sub(r1, r2);
            fb.ret(Some(d));
            let mut p = Program::new();
            p.add_function(fb.finish());
            p
        };
        let o1 = run_main(&build());
        let o2 = run_main(&build());
        assert_eq!(o1.ret, o2.ret);
        assert_ne!(
            o1.ret, 0,
            "two calls with same arg must differ via scratch state"
        );
    }

    #[test]
    fn profile_counts_blocks_edges_branches() {
        // if (i & 1) odd++ ; loop 10 times
        let mut fb = FunctionBuilder::new("main");
        let hdr = fb.new_block();
        let odd = fb.new_block();
        let join = fb.new_block();
        let exit = fb.new_block();
        let i = fb.new_vreg(RegClass::Int);
        let z = fb.movi(0);
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(i).args(&[z]));
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lti(i, 10);
        fb.branch(p, join, exit);
        fb.switch_to(join);
        let bit = fb.new_vreg(RegClass::Int);
        fb.push(
            crate::inst::Inst::new(Opcode::AndI)
                .dst(bit)
                .args(&[i])
                .imm(1),
        );
        let isodd = fb.new_vreg(RegClass::Pred);
        fb.push(
            crate::inst::Inst::new(Opcode::CmpEqI)
                .dst(isodd)
                .args(&[bit])
                .imm(1),
        );
        let back = fb.new_block();
        fb.branch(isodd, odd, back);
        fb.switch_to(odd);
        fb.br(back);
        fb.switch_to(back);
        let i2 = fb.addi(i, 1);
        fb.push(crate::inst::Inst::new(Opcode::Mov).dst(i).args(&[i2]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        let mut prog = Program::new();
        let fid = prog.add_function(fb.finish());
        let cfg = RunConfig {
            profile: true,
            ..Default::default()
        };
        let out = run(&prog, &cfg).unwrap();
        let prof = out.profile.unwrap();
        let fp = prof.func(fid);
        assert_eq!(fp.block_count(hdr), 11); // 10 iterations + exit test
        assert_eq!(fp.block_count(odd), 5);
        assert_eq!(fp.edge_count(hdr, exit), 1);
        // The alternating odd/even branch defeats a 2-bit predictor.
        let (_, stats) = fp
            .branches
            .iter()
            .find(|((b, _), _)| *b == join)
            .expect("branch stats recorded");
        assert_eq!(stats.executed, 10);
        assert_eq!(stats.taken, 5);
        assert!(stats.predictability() < 0.7, "{stats:?}");
    }
}
