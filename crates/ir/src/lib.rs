#![warn(missing_docs)]
//! # metaopt-ir
//!
//! A small, executable compiler intermediate representation (IR) used as the
//! substrate for the *Meta Optimization* (PLDI 2003) reproduction.
//!
//! The IR is a load/store virtual-register machine with three register
//! classes (integer, floating point, predicate), explicit control transfer
//! instructions, and full support for **predicated execution**: every
//! instruction carries an optional guard predicate, which is what the
//! hyperblock-formation case study manipulates.
//!
//! The crate provides:
//!
//! * the IR data structures ([`Program`], [`Function`], [`Block`], [`Inst`],
//!   [`Opcode`]) and a [`builder`] for constructing them,
//! * structural verification ([`verify`]),
//! * classic CFG analyses: reverse postorder, [`dom`]inators, natural
//!   [`loops`], def-use information and [`liveness`] — the latter an instance
//!   of the generic worklist [`dataflow`] solver,
//! * a reference [`interp`]reter that both executes programs and collects the
//!   execution [`profile`]s (block counts, edge counts, branch-predictability
//!   statistics) that the paper's priority functions consume.
//!
//! The interpreter is the semantic ground truth: the optimizing compiler in
//! `metaopt-compiler` and the cycle simulator in `metaopt-sim` are
//! differentially tested against it on every benchmark and every priority
//! function the genetic search explores.
//!
//! ```
//! use metaopt_ir::builder::FunctionBuilder;
//! use metaopt_ir::Program;
//!
//! // Build `fn main() -> i64 { return 2 + 40; }` and run it.
//! let mut fb = FunctionBuilder::new("main");
//! let a = fb.movi(2);
//! let b = fb.movi(40);
//! let c = fb.add(a, b);
//! fb.ret(Some(c));
//! let func = fb.finish();
//! let mut prog = Program::new();
//! prog.add_function(func);
//!
//! let outcome = metaopt_ir::interp::run(&prog, &Default::default()).unwrap();
//! assert_eq!(outcome.ret, 42);
//! ```

pub mod budget;
pub mod builder;
pub mod dataflow;
pub mod dom;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod profile;
pub mod program;
pub mod types;
pub mod util;
pub mod verify;

pub use inst::{Inst, Opcode, Width};
pub use program::{Block, Function, GlobalData, GlobalInit, Program};
pub use types::{BlockId, FuncId, RegClass, VReg};
