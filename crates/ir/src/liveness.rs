//! Backward liveness dataflow over virtual registers.
//!
//! Predication-aware in the conservative direction: a *predicated* definition
//! is not treated as a kill (the guard might be false, leaving the previous
//! value live), which is the standard safe treatment for EPIC-style IRs.

use crate::dataflow::{self, Direction, GenKill, Join};
use crate::program::Function;
use crate::types::{BlockId, VReg};
use crate::util::BitSet;

/// Per-block live-in/live-out sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<BitSet>,
    /// Upward-exposed uses per block.
    pub use_set: Vec<BitSet>,
    /// Unconditional defs per block.
    pub def_set: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for `func` as a backward-may instance of the generic
    /// worklist solver: gen = upward-exposed uses, kill = unconditional defs.
    pub fn compute(func: &Function) -> Self {
        let nb = func.blocks.len();
        let nv = func.num_vregs();
        let mut problem = GenKill::new(Direction::Backward, Join::May, nb, nv);

        for (bi, block) in func.blocks.iter().enumerate() {
            let (gen, kill) = (&mut problem.gen[bi], &mut problem.kill[bi]);
            for inst in &block.insts {
                for r in inst.reads() {
                    if !kill.contains(r.index()) {
                        gen.insert(r.index());
                    }
                }
                if let Some(d) = inst.dst {
                    if inst.pred.is_none() {
                        kill.insert(d.index());
                    } else {
                        // Predicated def: also an upward-exposed *use* of the
                        // old value (merge semantics), and not a kill.
                        if !kill.contains(d.index()) {
                            gen.insert(d.index());
                        }
                    }
                }
            }
        }

        let sol = dataflow::solve(func, &problem);
        Liveness {
            live_in: sol.entry,
            live_out: sol.exit,
            use_set: problem.gen,
            def_set: problem.kill,
        }
    }

    /// Is `r` live on entry to `b`?
    pub fn live_in_at(&self, b: BlockId, r: VReg) -> bool {
        self.live_in[b.index()].contains(r.index())
    }

    /// Is `r` live on exit from `b`?
    pub fn live_out_at(&self, b: BlockId, r: VReg) -> bool {
        self.live_out[b.index()].contains(r.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Inst, Opcode};
    use crate::types::RegClass;

    #[test]
    fn loop_carried_value_is_live_around_loop() {
        // acc defined in entry, used+updated in loop body, used after.
        let mut fb = FunctionBuilder::new("l");
        let n = fb.param(RegClass::Int);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let acc0 = fb.movi(0);
        let i0 = fb.movi(0);
        // Use explicit registers as mutable cells via Mov into fixed vregs.
        let acc = fb.new_vreg(RegClass::Int);
        let i = fb.new_vreg(RegClass::Int);
        fb.push(Inst::new(Opcode::Mov).dst(acc).args(&[acc0]));
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[i0]));
        fb.br(hdr);
        fb.switch_to(hdr);
        let p = fb.cmp_lt(i, n);
        fb.branch(p, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(acc, i);
        fb.push(Inst::new(Opcode::Mov).dst(acc).args(&[acc2]));
        let i2 = fb.addi(i, 1);
        fb.push(Inst::new(Opcode::Mov).dst(i).args(&[i2]));
        fb.br(hdr);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in_at(hdr, acc));
        assert!(lv.live_in_at(hdr, i));
        assert!(lv.live_out_at(body, acc));
        assert!(lv.live_in_at(exit, acc));
        assert!(!lv.live_in_at(exit, i));
    }

    #[test]
    fn predicated_def_does_not_kill() {
        let mut fb = FunctionBuilder::new("p");
        let x = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let p = fb.cmp_lti(x, 0);
        let v = fb.movi(1);
        // Predicated overwrite of v.
        fb.push(Inst::new(Opcode::MovI).dst(v).imm(2).guarded(p));
        fb.br(b1);
        fb.switch_to(b1);
        fb.ret(Some(v));
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        // v's unpredicated def in entry kills it: not live-in to entry.
        assert!(!lv.live_in_at(f.entry, v));
        // But within the entry block, the predicated def counted as a use and
        // not a def; v flows out to b1.
        assert!(lv.live_out_at(f.entry, v));
    }

    #[test]
    fn dead_value_not_live() {
        let mut fb = FunctionBuilder::new("d");
        let a = fb.movi(1);
        let _dead = fb.movi(99);
        fb.ret(Some(a));
        let f = fb.finish();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in[f.entry.index()].is_empty());
    }
}
