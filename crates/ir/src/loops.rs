//! Natural-loop detection and loop nesting.

use crate::dom::DomTree;
use crate::program::Function;
use crate::types::BlockId;
use crate::util::BitSet;

/// A natural loop: a header plus the set of blocks that can reach one of the
/// header's backedge sources without passing through the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (target of the backedges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BitSet,
    /// Sources of backedges into the header.
    pub latches: Vec<BlockId>,
    /// Index of the innermost enclosing loop, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

impl NaturalLoop {
    /// Is `b` inside this loop?
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(b.index())
    }

    /// Blocks outside the loop that the loop can exit to.
    pub fn exit_targets(&self, func: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for bi in self.blocks.iter() {
            for s in func.successors(BlockId(bi as u32)) {
                if !self.contains(s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// All natural loops of a function, with nesting resolved.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// Loops, ordered outermost-first within each nest.
    pub loops: Vec<NaturalLoop>,
    /// For each block, the innermost loop containing it, if any.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detect natural loops using the dominator tree. Loops sharing a header
    /// are merged (standard practice).
    pub fn compute(func: &Function, dt: &DomTree) -> Self {
        let n = func.blocks.len();
        // Collect backedges u -> h where h dominates u.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &u in &dt.rpo {
            for s in func.successors(u) {
                if dt.dominates(s, u) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, ls)) => ls.push(u),
                        None => by_header.push((s, vec![u])),
                    }
                }
            }
        }
        // Build each loop's block set by walking predecessors from latches.
        let preds = func.predecessors();
        let mut loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, latches)| {
                let mut blocks = BitSet::new(n);
                blocks.insert(header.index());
                let mut stack: Vec<BlockId> = Vec::new();
                for &l in &latches {
                    if blocks.insert(l.index()) {
                        stack.push(l);
                    }
                }
                while let Some(b) = stack.pop() {
                    for &p in &preds[b.index()] {
                        if dt.is_reachable(p) && blocks.insert(p.index()) {
                            stack.push(p);
                        }
                    }
                }
                NaturalLoop {
                    header,
                    blocks,
                    latches,
                    parent: None,
                    depth: 1,
                }
            })
            .collect();

        // Nesting: loop A is inside loop B iff B contains A's header and A != B.
        // Sort by block count so parents (larger) come later; the innermost
        // enclosing loop is the smallest strictly-containing one.
        let order: Vec<usize> = {
            let mut ix: Vec<usize> = (0..loops.len()).collect();
            ix.sort_by_key(|&i| loops[i].blocks.count());
            ix
        };
        for (oi, &i) in order.iter().enumerate() {
            // Find the smallest loop later in the order containing header i.
            for &j in order.iter().skip(oi + 1) {
                if loops[j].blocks.contains(loops[i].header.index()) {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for (li, l) in loops.iter().enumerate() {
            for b in l.blocks.iter() {
                match innermost[b] {
                    Some(prev) if loops[prev].blocks.count() <= l.blocks.count() => {}
                    _ => innermost[b] = Some(li),
                }
            }
        }
        LoopForest { loops, innermost }
    }

    /// Loop-nesting depth of a block (0 = not in any loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost[b.index()].map_or(0, |l| self.loops[l].depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::RegClass;

    /// Two-level nest:
    /// b0 -> b1(outer hdr) -> b2(inner hdr) -> b3(inner body) -> b2 ;
    /// b2 -> b4 -> b1 ; b1 -> b5(exit)
    fn nest() -> (Function, [BlockId; 6]) {
        let mut fb = FunctionBuilder::new("nest");
        let x = fb.param(RegClass::Int);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let b4 = fb.new_block();
        let b5 = fb.new_block();
        fb.br(b1);
        fb.switch_to(b1);
        let p1 = fb.cmp_lti(x, 10);
        fb.branch(p1, b2, b5);
        fb.switch_to(b2);
        let p2 = fb.cmp_lti(x, 5);
        fb.branch(p2, b3, b4);
        fb.switch_to(b3);
        fb.br(b2);
        fb.switch_to(b4);
        fb.br(b1);
        fb.switch_to(b5);
        fb.ret(None);
        let f = fb.finish();
        let e = f.entry;
        (f, [e, b1, b2, b3, b4, b5])
    }

    #[test]
    fn detects_nested_loops() {
        let (f, [b0, b1, b2, b3, b4, b5]) = nest();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        assert_eq!(lf.loops.len(), 2);
        let outer = lf.loops.iter().position(|l| l.header == b1).unwrap();
        let inner = lf.loops.iter().position(|l| l.header == b2).unwrap();
        assert_eq!(lf.loops[inner].parent, Some(outer));
        assert_eq!(lf.loops[outer].depth, 1);
        assert_eq!(lf.loops[inner].depth, 2);
        assert_eq!(lf.depth_of(b3), 2);
        assert_eq!(lf.depth_of(b4), 1);
        assert_eq!(lf.depth_of(b0), 0);
        assert_eq!(lf.depth_of(b5), 0);
        assert!(lf.loops[outer].contains(b2));
        assert!(!lf.loops[inner].contains(b4));
    }

    #[test]
    fn exit_targets_found() {
        let (f, [_, b1, _, _, _, b5]) = nest();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        let outer = lf.loops.iter().position(|l| l.header == b1).unwrap();
        assert_eq!(lf.loops[outer].exit_targets(&f), vec![b5]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut fb = FunctionBuilder::new("s");
        fb.ret(None);
        let f = fb.finish();
        let dt = DomTree::compute(&f);
        let lf = LoopForest::compute(&f, &dt);
        assert!(lf.loops.is_empty());
    }
}
