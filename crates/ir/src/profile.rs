//! Execution profiles collected by the interpreter.
//!
//! These are the dynamic statistics the paper's priority functions consume:
//! block execution counts (`w_i` in Eq. 2), edge counts (from which path
//! execution ratios are derived), and per-branch taken/predictability
//! statistics from a simulated 2-bit predictor (the paper modified
//! Trimaran's profiler to extract exactly this; §5.3).

use crate::types::{BlockId, FuncId};
use std::collections::HashMap;

/// Dynamic statistics for one conditional-branch site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Times the branch instruction executed (guard true).
    pub executed: u64,
    /// Times it was taken.
    pub taken: u64,
    /// Times a 2-bit saturating-counter predictor guessed it correctly.
    pub correct: u64,
}

impl BranchStats {
    /// Fraction of executions that were taken (0.5 if never executed).
    pub fn taken_ratio(&self) -> f64 {
        if self.executed == 0 {
            0.5
        } else {
            self.taken as f64 / self.executed as f64
        }
    }

    /// 2-bit-predictor accuracy (1.0 if never executed — an unexecuted
    /// branch costs nothing).
    pub fn predictability(&self) -> f64 {
        if self.executed == 0 {
            1.0
        } else {
            self.correct as f64 / self.executed as f64
        }
    }
}

/// Profile of a single function.
#[derive(Clone, Debug, Default)]
pub struct FuncProfile {
    /// Execution count per block (indexed by `BlockId`).
    pub block_counts: Vec<u64>,
    /// Taken-edge counts keyed by `(from, to)` block ids.
    pub edge_counts: HashMap<(BlockId, BlockId), u64>,
    /// Branch statistics keyed by `(block, instruction index)`.
    pub branches: HashMap<(BlockId, usize), BranchStats>,
}

impl FuncProfile {
    /// Execution count of a block.
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block_counts.get(b.index()).copied().unwrap_or(0)
    }

    /// Count of the `from -> to` edge.
    pub fn edge_count(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Probability of leaving `from` along the edge to `to`
    /// (uniform over successors if `from` never executed).
    pub fn edge_prob(&self, from: BlockId, to: BlockId, num_succs: usize) -> f64 {
        let total: u64 = self
            .edge_counts
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, c)| *c)
            .sum();
        if total == 0 {
            if num_succs == 0 {
                0.0
            } else {
                1.0 / num_succs as f64
            }
        } else {
            self.edge_count(from, to) as f64 / total as f64
        }
    }

    /// Stats for the branch at `(block, instruction index)`.
    pub fn branch(&self, b: BlockId, i: usize) -> BranchStats {
        self.branches.get(&(b, i)).copied().unwrap_or_default()
    }

    /// This profile with block ids renumbered through `map` (old id →
    /// surviving new id), as produced by
    /// [`Function::prune_unreachable_blocks`](crate::Function::prune_unreachable_blocks).
    /// Entries for deleted blocks are dropped; blocks the profile never saw
    /// (added by later passes) keep their implicit zero counts.
    pub fn remap_blocks(&self, map: &[Option<BlockId>]) -> FuncProfile {
        let lookup = |b: BlockId| map.get(b.index()).copied().flatten();
        let n = map.iter().filter(|m| m.is_some()).count();
        let mut block_counts = vec![0u64; n];
        for (old, c) in self.block_counts.iter().enumerate() {
            if let Some(nb) = lookup(BlockId(old as u32)) {
                block_counts[nb.index()] = *c;
            }
        }
        let edge_counts = self
            .edge_counts
            .iter()
            .filter_map(|(&(f, t), &c)| Some(((lookup(f)?, lookup(t)?), c)))
            .collect();
        let branches = self
            .branches
            .iter()
            .filter_map(|(&(b, i), &s)| Some(((lookup(b)?, i), s)))
            .collect();
        FuncProfile {
            block_counts,
            edge_counts,
            branches,
        }
    }
}

/// Whole-program profile.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-function profiles, indexed by `FuncId`.
    pub funcs: Vec<FuncProfile>,
    /// Total dynamic instructions executed (including nullified ones).
    pub dyn_insts: u64,
}

impl Profile {
    /// Profile of one function.
    pub fn func(&self, f: FuncId) -> &FuncProfile {
        &self.funcs[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_ratios() {
        let s = BranchStats {
            executed: 10,
            taken: 7,
            correct: 9,
        };
        assert!((s.taken_ratio() - 0.7).abs() < 1e-12);
        assert!((s.predictability() - 0.9).abs() < 1e-12);
        let z = BranchStats::default();
        assert_eq!(z.taken_ratio(), 0.5);
        assert_eq!(z.predictability(), 1.0);
    }

    #[test]
    fn edge_prob_uniform_when_unexecuted() {
        let p = FuncProfile::default();
        assert_eq!(p.edge_prob(BlockId(0), BlockId(1), 2), 0.5);
    }

    #[test]
    fn edge_prob_from_counts() {
        let mut p = FuncProfile::default();
        p.edge_counts.insert((BlockId(0), BlockId(1)), 30);
        p.edge_counts.insert((BlockId(0), BlockId(2)), 10);
        assert!((p.edge_prob(BlockId(0), BlockId(1), 2) - 0.75).abs() < 1e-12);
    }
}
