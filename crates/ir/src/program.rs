//! Programs, functions, basic blocks and global data.

use crate::inst::{Inst, Opcode};
use crate::types::{BlockId, FuncId, RegClass, VReg};
use std::collections::HashMap;
use std::fmt;

/// A basic block: a sequence of instructions.
///
/// **Canonical form** (before if-conversion): only the final one or two
/// instructions transfer control — an optional `CBr` followed by a mandatory
/// `Br`/`Ret`. **Hyperblock form** (after if-conversion): predicated `CBr`
/// side exits may appear anywhere, but the block still terminates with an
/// unconditional `Br` or `Ret`.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Instructions in program order.
    pub insts: Vec<Inst>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Block { insts: Vec::new() }
    }

    /// The terminating instruction, if the block is non-empty.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last()
    }

    /// All successor blocks, in branch order: each `CBr` target in program
    /// order, then the final `Br` target (if any).
    pub fn successors(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        for inst in &self.insts {
            if let (Opcode::CBr | Opcode::Br, Some(t)) = (inst.op, inst.target) {
                out.push(t);
            }
        }
        out
    }

    /// Does this block end the function?
    pub fn ends_with_ret(&self) -> bool {
        matches!(self.terminator().map(|i| i.op), Some(Opcode::Ret))
    }
}

/// A function: a CFG of basic blocks over a local virtual-register space.
#[derive(Clone, Debug)]
pub struct Function {
    /// Human-readable name (unique within a [`Program`]).
    pub name: String,
    /// Parameter registers, filled by the caller in order.
    pub params: Vec<VReg>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Register class of each virtual register, indexed by [`VReg`].
    pub vreg_class: Vec<RegClass>,
}

impl Function {
    /// Create an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::new()],
            entry: BlockId(0),
            vreg_class: Vec::new(),
        }
    }

    /// Number of virtual registers allocated so far.
    pub fn num_vregs(&self) -> usize {
        self.vreg_class.len()
    }

    /// Allocate a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        let r = VReg(self.vreg_class.len() as u32);
        self.vreg_class.push(class);
        r
    }

    /// Append a fresh empty block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Class of a virtual register.
    pub fn class_of(&self, r: VReg) -> RegClass {
        self.vreg_class[r.index()]
    }

    /// Successors of a block (see [`Block::successors`]).
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).successors()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Reverse postorder over reachable blocks starting at the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-successor-ix).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut ix)) = stack.last_mut() {
            let succs = self.successors(b);
            if *ix < succs.len() {
                let s = succs[*ix];
                *ix += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Delete every block unreachable from the entry, renumbering the
    /// survivors in place (original order preserved) and rewriting branch
    /// targets. Returns the old-to-new block mapping, `None` for deleted
    /// blocks; the mapping is the identity when everything is reachable.
    ///
    /// Passes that disconnect blocks (e.g. if-conversion absorbing a path)
    /// call this so downstream consumers — and the inter-pass invariant
    /// checker — never see their tombstones.
    pub fn prune_unreachable_blocks(&mut self) -> Vec<Option<BlockId>> {
        let n = self.blocks.len();
        let mut keep = vec![false; n];
        for b in self.reverse_postorder() {
            keep[b.index()] = true;
        }
        let mut map: Vec<Option<BlockId>> = Vec::with_capacity(n);
        let mut next = 0u32;
        for &k in &keep {
            if k {
                map.push(Some(BlockId(next)));
                next += 1;
            } else {
                map.push(None);
            }
        }
        if next as usize == n {
            return map; // identity
        }
        let old = std::mem::take(&mut self.blocks);
        self.blocks = old
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, mut b)| {
                for inst in &mut b.insts {
                    if let Some(t) = inst.target {
                        inst.target = map[t.index()]; // reachable block's targets survive
                    }
                }
                b
            })
            .collect();
        self.entry = map[self.entry.index()].expect("entry is always reachable");
        map
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: {}", self.class_of(*p))?;
        }
        writeln!(f, ") {{")?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "{}:", BlockId(i as u32))?;
            for inst in &b.insts {
                writeln!(f, "    {inst}")?;
            }
        }
        writeln!(f, "}}")
    }
}

/// How a global data region is initialized.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// All-zero bytes.
    Zero,
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Packed little-endian `i64`s.
    I64s(Vec<i64>),
    /// Packed little-endian `f64` bit patterns.
    F64s(Vec<f64>),
}

/// A named global data region.
#[derive(Clone, Debug)]
pub struct GlobalData {
    /// Symbol name (unique within the program).
    pub name: String,
    /// Size in bytes.
    pub size: usize,
    /// Initializer.
    pub init: GlobalInit,
}

/// Base address of the first global; address 0 is reserved as "null" and the
/// low page stays unmapped so stray accesses are easy to spot.
pub const GLOBAL_BASE: i64 = 4096;

/// Scratch area written by [`Opcode::UnsafeCall`]; lives below the globals.
pub const UNSAFE_SCRATCH_BASE: i64 = 1024;

/// A whole program: functions plus global data.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All functions; `FuncId` indexes this vector.
    pub funcs: Vec<Function>,
    /// Global data regions, laid out in order from [`GLOBAL_BASE`].
    pub globals: Vec<GlobalData>,
    name_to_func: HashMap<String, FuncId>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Add a function; its name must be unique.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        assert!(
            self.name_to_func.insert(f.name.clone(), id).is_none(),
            "duplicate function name {}",
            f.name
        );
        self.funcs.push(f);
        id
    }

    /// Add a global region; returns its base address.
    ///
    /// # Panics
    /// Panics if a global with the same name already exists.
    pub fn add_global(&mut self, g: GlobalData) -> i64 {
        assert!(
            self.globals.iter().all(|x| x.name != g.name),
            "duplicate global name {}",
            g.name
        );
        self.globals.push(g);
        self.global_addr(&self.globals.last().unwrap().name.clone())
            .unwrap()
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.name_to_func.get(name).copied()
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// The entry function, named `main` if present, else function 0.
    pub fn entry_func(&self) -> FuncId {
        self.func_by_name("main").unwrap_or(FuncId(0))
    }

    /// Base address of a named global under the deterministic layout:
    /// globals are placed in declaration order from [`GLOBAL_BASE`], each
    /// 8-byte aligned.
    pub fn global_addr(&self, name: &str) -> Option<i64> {
        let mut addr = GLOBAL_BASE;
        for g in &self.globals {
            if g.name == name {
                return Some(addr);
            }
            addr += ((g.size + 7) & !7) as i64;
        }
        None
    }

    /// Total memory image size (bytes) needed to run this program.
    pub fn memory_size(&self) -> usize {
        let mut addr = GLOBAL_BASE as usize;
        for g in &self.globals {
            addr += (g.size + 7) & !7;
        }
        addr
    }

    /// Build the initial memory image: globals with their initializers.
    pub fn initial_memory(&self) -> Vec<u8> {
        let mut mem = vec![0u8; self.memory_size()];
        let mut addr = GLOBAL_BASE as usize;
        for g in &self.globals {
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::Bytes(b) => {
                    assert!(
                        b.len() <= g.size,
                        "initializer larger than global {}",
                        g.name
                    );
                    mem[addr..addr + b.len()].copy_from_slice(b);
                }
                GlobalInit::I64s(vs) => {
                    assert!(
                        vs.len() * 8 <= g.size,
                        "initializer larger than global {}",
                        g.name
                    );
                    for (i, v) in vs.iter().enumerate() {
                        mem[addr + i * 8..addr + i * 8 + 8].copy_from_slice(&v.to_le_bytes());
                    }
                }
                GlobalInit::F64s(vs) => {
                    assert!(
                        vs.len() * 8 <= g.size,
                        "initializer larger than global {}",
                        g.name
                    );
                    for (i, v) in vs.iter().enumerate() {
                        mem[addr + i * 8..addr + i * 8 + 8]
                            .copy_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
            addr += (g.size + 7) & !7;
        }
        mem
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(
                f,
                "global {} [{} bytes] @ {}",
                g.name,
                g.size,
                self.global_addr(&g.name).unwrap()
            )?;
        }
        for func in &self.funcs {
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Opcode};

    fn ret_block() -> Block {
        Block {
            insts: vec![Inst::new(Opcode::Ret)],
        }
    }

    #[test]
    fn successors_in_branch_order() {
        let mut b = Block::new();
        b.insts
            .push(Inst::new(Opcode::CBr).args(&[VReg(0)]).target(BlockId(2)));
        b.insts.push(Inst::new(Opcode::Br).target(BlockId(1)));
        assert_eq!(b.successors(), vec![BlockId(2), BlockId(1)]);
    }

    #[test]
    fn global_layout_is_aligned_and_ordered() {
        let mut p = Program::new();
        let a = p.add_global(GlobalData {
            name: "a".into(),
            size: 3,
            init: GlobalInit::Zero,
        });
        let b = p.add_global(GlobalData {
            name: "b".into(),
            size: 16,
            init: GlobalInit::Zero,
        });
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b, GLOBAL_BASE + 8); // 3 rounds up to 8
        assert_eq!(p.memory_size(), (GLOBAL_BASE + 8 + 16) as usize);
    }

    #[test]
    fn initial_memory_applies_initializers() {
        let mut p = Program::new();
        p.add_global(GlobalData {
            name: "xs".into(),
            size: 16,
            init: GlobalInit::I64s(vec![7, -1]),
        });
        let mem = p.initial_memory();
        let base = GLOBAL_BASE as usize;
        assert_eq!(
            i64::from_le_bytes(mem[base..base + 8].try_into().unwrap()),
            7
        );
        assert_eq!(
            i64::from_le_bytes(mem[base + 8..base + 16].try_into().unwrap()),
            -1
        );
    }

    #[test]
    fn reverse_postorder_visits_entry_first() {
        let mut f = Function::new("t");
        let b1 = f.new_block();
        let b2 = f.new_block();
        let p = f.new_vreg(RegClass::Pred);
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::new(Opcode::CBr).args(&[p]).target(b2));
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::new(Opcode::Br).target(b1));
        *f.block_mut(b1) = ret_block();
        *f.block_mut(b2) = ret_block();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_names_rejected() {
        let mut p = Program::new();
        p.add_function(Function::new("f"));
        p.add_function(Function::new("f"));
    }
}
