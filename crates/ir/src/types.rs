//! Core identifier types shared across the IR.

use std::fmt;

/// A virtual register.
///
/// Virtual registers are function-local and drawn from a single numbering
/// space; their register class (integer / float / predicate) is recorded in
/// [`Function::vreg_class`](crate::Function::vreg_class).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Index into per-function side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block identifier, local to its [`Function`](crate::Function).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into `Function::blocks`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A function identifier, an index into [`Program::funcs`](crate::Program).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into `Program::funcs`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Register class of a virtual (and later physical) register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RegClass {
    /// 64-bit integer register.
    #[default]
    Int,
    /// 64-bit floating-point register.
    Float,
    /// 1-bit predicate register (guards predicated execution).
    Pred,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
            RegClass::Pred => write!(f, "pred"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(VReg(3).to_string(), "v3");
        assert_eq!(BlockId(7).to_string(), "b7");
        assert_eq!(FuncId(0).to_string(), "f0");
        assert_eq!(RegClass::Pred.to_string(), "pred");
    }

    #[test]
    fn indices_round_trip() {
        assert_eq!(VReg(9).index(), 9);
        assert_eq!(BlockId(4).index(), 4);
        assert_eq!(FuncId(2).index(), 2);
    }

    #[test]
    fn reg_class_default_is_int() {
        assert_eq!(RegClass::default(), RegClass::Int);
    }
}
