//! Small utilities: a dense bit set used by the dataflow analyses.

/// A fixed-capacity dense bit set over `usize` indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over `len` elements (the ⊤ of must-dataflow lattices).
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = !0;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// Capacity (number of addressable indices).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i` is out of capacity.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bitset index {i} out of capacity {}",
            self.len
        );
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bitset index {i} out of capacity {}",
            self.len
        );
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Does `self` intersect `other`?
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over present indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(42);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(42));
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [5usize, 1, 99, 64].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 64, 99]);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [2usize, 3].into_iter().collect();
        assert!(a.intersects(&b));
        a.subtract(&b);
        let v: Vec<usize> = a.iter().collect();
        assert_eq!(v, vec![1]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(8);
        assert!(!s.contains(100));
    }

    #[test]
    fn full_contains_exactly_the_domain() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "full({len})");
            assert!((0..len).all(|i| s.contains(i)));
            assert!(!s.contains(len));
        }
        let mut s = BitSet::full(70);
        s.intersect_with(&BitSet::new(70));
        assert!(s.is_empty());
    }
}
