//! Structural verification of IR functions and programs.

use crate::inst::{Inst, Opcode};
use crate::program::{Function, Program};
use crate::types::RegClass;
use std::fmt;

/// Verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description including the offending location.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Which structural discipline to enforce.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CfgForm {
    /// Before if-conversion: control transfers only at block ends — a
    /// (possibly empty) run of `CBr`s followed by a final `Br` or `Ret`.
    #[default]
    Canonical,
    /// After if-conversion: predicated `CBr` side exits may appear anywhere;
    /// the final instruction must still be an unconditional `Br` or `Ret`.
    Hyperblock,
}

fn err(f: &Function, b: usize, i: usize, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        message: format!("{}: b{b}[{i}]: {}", f.name, msg.into()),
    }
}

fn check_operand_shape(inst: &Inst) -> Result<(), String> {
    use Opcode::*;
    if let Some(sig) = inst.op.arg_classes() {
        if inst.args.len() != sig.len() {
            return Err(format!(
                "{} expects {} operands, got {}",
                inst.op,
                sig.len(),
                inst.args.len()
            ));
        }
    } else if inst.op == Opcode::Ret && inst.args.len() > 1 {
        return Err("ret takes at most one value".into());
    }
    // Destination presence.
    match (inst.op.dst_class(), inst.dst) {
        (Some(_), None) if matches!(inst.op, Call | UnsafeCall) => {} // result may be dropped
        (Some(_), None) => return Err(format!("{} requires a destination", inst.op)),
        (None, Some(_)) => return Err(format!("{} must not have a destination", inst.op)),
        _ => {}
    }
    // Branch target presence.
    if inst.op.is_branch() && inst.target.is_none() {
        return Err(format!("{} requires a target", inst.op));
    }
    if !inst.op.is_branch() && inst.target.is_some() {
        return Err(format!("{} must not have a target", inst.op));
    }
    Ok(())
}

fn check_operand_classes(func: &Function, inst: &Inst) -> Result<(), String> {
    if let Some(sig) = inst.op.arg_classes() {
        for (a, want) in inst.args.iter().zip(sig) {
            if a.index() >= func.num_vregs() {
                return Err(format!("operand {a} out of range"));
            }
            let got = func.class_of(*a);
            if got != *want {
                return Err(format!("operand {a} has class {got}, expected {want}"));
            }
        }
    } else {
        for a in &inst.args {
            if a.index() >= func.num_vregs() {
                return Err(format!("operand {a} out of range"));
            }
        }
    }
    if let Some(d) = inst.dst {
        if d.index() >= func.num_vregs() {
            return Err(format!("destination {d} out of range"));
        }
        if let Some(want) = inst.op.dst_class() {
            let got = func.class_of(d);
            if got != want {
                return Err(format!("destination {d} has class {got}, expected {want}"));
            }
        }
    }
    // Guard.
    if let Some(p) = inst.pred {
        if p.index() >= func.num_vregs() {
            return Err(format!("guard {p} out of range"));
        }
        if func.class_of(p) != RegClass::Pred {
            return Err(format!("guard {p} is not a predicate"));
        }
    }
    Ok(())
}

/// Verify one function under the given CFG discipline.
///
/// # Errors
/// Returns the first structural violation found.
pub fn verify_function(func: &Function, form: CfgForm) -> Result<(), VerifyError> {
    verify_function_inner(func, form, true)
}

/// [`verify_function`] minus every register-class and register-range check:
/// block/terminator discipline, operand counts, destination and branch-target
/// presence only.
///
/// This is the strongest structural check that stays valid once register
/// allocation has rewritten the function into machine-register form, where
/// operand indices are physical registers whose class is implied by the
/// consuming opcode (the same index names a GPR, FPR, or predicate register
/// depending on position) and `Function::vreg_class` no longer describes the
/// numbering.
///
/// # Errors
/// Returns the first structural violation found.
pub fn verify_function_shape(func: &Function, form: CfgForm) -> Result<(), VerifyError> {
    verify_function_inner(func, form, false)
}

fn verify_function_inner(
    func: &Function,
    form: CfgForm,
    check_classes: bool,
) -> Result<(), VerifyError> {
    if func.blocks.is_empty() {
        return Err(VerifyError {
            message: format!("{}: function has no blocks", func.name),
        });
    }
    if func.entry.index() >= func.blocks.len() {
        return Err(VerifyError {
            message: format!("{}: entry block out of range", func.name),
        });
    }
    for (bi, block) in func.blocks.iter().enumerate() {
        if block.insts.is_empty() {
            return Err(err(func, bi, 0, "empty block"));
        }
        let last = block.insts.len() - 1;
        match block.insts[last].op {
            Opcode::Br | Opcode::Ret => {}
            op => {
                return Err(err(
                    func,
                    bi,
                    last,
                    format!("block must end with br/ret, ends with {op}"),
                ))
            }
        }
        if block.insts[last].pred.is_some() {
            return Err(err(func, bi, last, "terminator must be unconditional"));
        }
        // Control-placement discipline.
        let mut seen_cbr_tail = false;
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Err(m) = check_operand_shape(inst) {
                return Err(err(func, bi, ii, m));
            }
            if check_classes {
                if let Err(m) = check_operand_classes(func, inst) {
                    return Err(err(func, bi, ii, m));
                }
            }
            if let Some(t) = inst.target {
                if t.index() >= func.blocks.len() {
                    return Err(err(func, bi, ii, format!("branch target {t} out of range")));
                }
            }
            if ii == last {
                continue;
            }
            match inst.op {
                Opcode::Br | Opcode::Ret => {
                    return Err(err(func, bi, ii, "unconditional control mid-block"))
                }
                Opcode::CBr => match form {
                    CfgForm::Canonical => seen_cbr_tail = true,
                    CfgForm::Hyperblock => {}
                },
                _ if form == CfgForm::Canonical && seen_cbr_tail => {
                    return Err(err(
                        func,
                        bi,
                        ii,
                        "non-control instruction after CBr in canonical form",
                    ));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Verify a whole program: every function, plus cross-function properties
/// (call targets in range, argument counts match callee parameters).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_program(prog: &Program, form: CfgForm) -> Result<(), VerifyError> {
    for func in &prog.funcs {
        verify_function(func, form)?;
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                if inst.op == Opcode::Call {
                    let callee = inst.imm;
                    if callee < 0 || callee as usize >= prog.funcs.len() {
                        return Err(err(
                            func,
                            bi,
                            ii,
                            format!("call target {callee} out of range"),
                        ));
                    }
                    let cf = &prog.funcs[callee as usize];
                    if cf.params.len() != inst.args.len() {
                        return Err(err(
                            func,
                            bi,
                            ii,
                            format!(
                                "call to {} passes {} args, expects {}",
                                cf.name,
                                inst.args.len(),
                                cf.params.len()
                            ),
                        ));
                    }
                    for (a, p) in inst.args.iter().zip(&cf.params) {
                        if func.class_of(*a) != cf.class_of(*p) {
                            return Err(err(func, bi, ii, "call argument class mismatch"));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BlockId;

    #[test]
    fn accepts_simple_function() {
        let mut fb = FunctionBuilder::new("ok");
        let a = fb.movi(1);
        fb.ret(Some(a));
        assert!(verify_function(&fb.finish(), CfgForm::Canonical).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut fb = FunctionBuilder::new("bad");
        fb.movi(1);
        let f = fb.finish();
        let e = verify_function(&f, CfgForm::Canonical).unwrap_err();
        assert!(e.message.contains("must end with br/ret"), "{e}");
    }

    #[test]
    fn rejects_class_mismatch() {
        let mut fb = FunctionBuilder::new("bad");
        let a = fb.movi(1); // Int
        fb.push(
            Inst::new(Opcode::CBr).args(&[a]).target(BlockId(0)), // needs Pred
        );
        fb.ret(None);
        let f = fb.finish();
        let e = verify_function(&f, CfgForm::Canonical).unwrap_err();
        assert!(e.message.contains("expected pred"), "{e}");
    }

    #[test]
    fn rejects_mid_block_compute_after_cbr_in_canonical_form() {
        let mut fb = FunctionBuilder::new("bad");
        let b1 = fb.new_block();
        let zero = fb.movi(0);
        let p = fb.cmp_lti(zero, 1);
        fb.cbr(p, b1);
        fb.movi(3); // compute after CBr: illegal canonically
        fb.br(b1);
        fb.switch_to(b1);
        fb.ret(None);
        let f = fb.finish();
        assert!(verify_function(&f, CfgForm::Canonical).is_err());
        assert!(verify_function(&f, CfgForm::Hyperblock).is_ok());
    }

    #[test]
    fn shape_verifier_ignores_classes_but_keeps_discipline() {
        // Machine-form idiom after register allocation: index 1 is both a
        // predicate register (CBr guard) and a GPR (Add operands) — the
        // class is implied by the consuming opcode, so the full verifier
        // rejects it while the shape verifier accepts it.
        let mut fb = FunctionBuilder::new("machine");
        let b1 = fb.new_block();
        let a = fb.movi(1);
        fb.push(Inst::new(Opcode::Add).dst(a).args(&[a, a]));
        fb.push(Inst::new(Opcode::CBr).args(&[a]).target(b1));
        fb.br(b1);
        fb.switch_to(b1);
        fb.movi(7);
        fb.ret(None);
        let f = fb.finish();
        assert!(verify_function(&f, CfgForm::Canonical).is_err());
        assert!(verify_function_shape(&f, CfgForm::Canonical).is_ok());
        // Shape discipline still applies: a dropped terminator is caught.
        let mut broken = f.clone();
        broken.blocks[1].insts.pop();
        let e = verify_function_shape(&broken, CfgForm::Canonical).unwrap_err();
        assert!(e.message.contains("must end with br/ret"), "{e}");
    }

    #[test]
    fn hyperblock_form_accepts_predicated_side_exits() {
        // If-converted shape: a guarded CBr mid-block with compute after it,
        // then an unconditional terminator.
        let mut fb = FunctionBuilder::new("hb");
        let exit = fb.new_block();
        let a = fb.movi(1);
        let p = fb.cmp_lti(a, 10);
        let mut side = Inst::new(Opcode::CBr).args(&[p]).target(exit);
        side.pred = Some(p);
        fb.push(side);
        fb.movi(2); // compute after the side exit
        fb.br(exit);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        assert!(verify_function(&f, CfgForm::Hyperblock).is_ok());
        assert!(verify_function(&f, CfgForm::Canonical).is_err());
    }

    #[test]
    fn hyperblock_form_still_rejects_malformed_tails() {
        // A predicated terminator is malformed in every form: fallthrough
        // off the end of a block when the guard is false.
        let mut fb = FunctionBuilder::new("hb");
        let exit = fb.new_block();
        let a = fb.movi(1);
        let p = fb.cmp_lti(a, 10);
        let mut tail = Inst::new(Opcode::Br).target(exit);
        tail.pred = Some(p);
        fb.push(tail);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let e = verify_function(&f, CfgForm::Hyperblock).unwrap_err();
        assert!(
            e.message.contains("terminator must be unconditional"),
            "{e}"
        );
        // Unconditional control mid-block is also still rejected.
        let mut fb = FunctionBuilder::new("hb2");
        let exit = fb.new_block();
        fb.br(exit);
        fb.movi(3);
        fb.br(exit);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let e = verify_function(&f, CfgForm::Hyperblock).unwrap_err();
        assert!(e.message.contains("unconditional control mid-block"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut fb = FunctionBuilder::new("bad");
        fb.push(Inst::new(Opcode::Br).target(BlockId(99)));
        let f = fb.finish();
        assert!(verify_function(&f, CfgForm::Canonical).is_err());
    }

    #[test]
    fn program_checks_call_arity() {
        let mut callee = FunctionBuilder::new("callee");
        let p = callee.param(crate::types::RegClass::Int);
        callee.ret(Some(p));
        let mut caller = FunctionBuilder::new("main");
        caller.call(0, &[]); // wrong arity
        caller.ret(None);
        let mut prog = Program::new();
        prog.add_function(callee.finish());
        prog.add_function(caller.finish());
        let e = verify_program(&prog, CfgForm::Canonical).unwrap_err();
        assert!(e.message.contains("passes 0 args"), "{e}");
    }
}
