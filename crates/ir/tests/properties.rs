//! Property-based tests of the IR substrate.

use metaopt_ir::builder::FunctionBuilder;
use metaopt_ir::interp::{run, RunConfig};
use metaopt_ir::util::BitSet;
use metaopt_ir::verify::{verify_function, CfgForm};
use metaopt_ir::Program;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(200);
        let mut hs: HashSet<usize> = HashSet::new();
        for (i, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(i), hs.insert(i));
            } else {
                prop_assert_eq!(bs.remove(i), hs.remove(&i));
            }
        }
        prop_assert_eq!(bs.count(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn straight_line_arithmetic_matches_model(
        consts in proptest::collection::vec(-1000i64..1000, 2..6),
        ops in proptest::collection::vec(0u8..4, 1..12),
    ) {
        // Build a random accumulator chain and mirror it in Rust.
        let mut fb = FunctionBuilder::new("main");
        let regs: Vec<_> = consts.iter().map(|&c| fb.movi(c)).collect();
        let mut acc = regs[0];
        let mut model = consts[0];
        for (k, op) in ops.iter().enumerate() {
            let rhs_i = k % consts.len();
            let rhs = regs[rhs_i];
            let c = consts[rhs_i];
            match op {
                0 => { acc = fb.add(acc, rhs); model = model.wrapping_add(c); }
                1 => { acc = fb.sub(acc, rhs); model = model.wrapping_sub(c); }
                2 => { acc = fb.mul(acc, rhs); model = model.wrapping_mul(c); }
                _ => {
                    acc = fb.xor(acc, rhs);
                    model ^= c;
                }
            }
        }
        fb.ret(Some(acc));
        let f = fb.finish();
        verify_function(&f, CfgForm::Canonical).expect("verifies");
        let mut prog = Program::new();
        prog.add_function(f);
        let out = run(&prog, &RunConfig::default()).expect("runs");
        prop_assert_eq!(out.ret, model);
    }

    #[test]
    fn interpreter_is_deterministic(seed in any::<i64>()) {
        let build = || {
            let mut fb = FunctionBuilder::new("main");
            let a = fb.movi(seed);
            let b = fb.unsafe_call(1, a);
            let c = fb.unsafe_call(2, b);
            let d = fb.xor(b, c);
            fb.ret(Some(d));
            let mut p = Program::new();
            p.add_function(fb.finish());
            p
        };
        let r1 = run(&build(), &RunConfig::default()).expect("runs").ret;
        let r2 = run(&build(), &RunConfig::default()).expect("runs").ret;
        prop_assert_eq!(r1, r2);
    }
}
