//! MiniC abstract syntax tree.

/// Scalar type of locals, parameters and expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
}

/// Element type of a global array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElemType {
    /// 64-bit signed integer elements.
    Int,
    /// 64-bit float elements.
    Float,
    /// Byte elements (read as zero-extended ints).
    Byte,
}

impl ElemType {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemType::Int | ElemType::Float => 8,
            ElemType::Byte => 1,
        }
    }

    /// Scalar type of a loaded element.
    pub fn scalar(self) -> Type {
        match self {
            ElemType::Float => Type::Float,
            _ => Type::Int,
        }
    }
}

/// Literal initializer value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

/// A global array declaration: `global int name[len] = { ... };`
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    /// Symbol name.
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Number of elements (1 for scalars).
    pub len: usize,
    /// Initializer values (may be shorter than `len`; rest is zero).
    pub init: Vec<Lit>,
    /// Source line.
    pub line: u32,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (strict)
    LAnd,
    /// `||` (strict)
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (Boolean operand).
    Not,
}

/// Expressions. Every node carries its source line for diagnostics.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, u32),
    /// Float literal.
    Float(f64, u32),
    /// Local variable or parameter reference.
    Var(String, u32),
    /// Global array element `name[index]`.
    Index(String, Box<Expr>, u32),
    /// Function or builtin call.
    Call(String, Vec<Expr>, u32),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, u32),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, u32),
}

impl Expr {
    /// Source line of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_, l)
            | Expr::Float(_, l)
            | Expr::Var(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::Unary(_, _, l)
            | Expr::Binary(_, _, _, l) => *l,
        }
    }
}

/// Assignment targets.
#[derive(Clone, Debug)]
pub enum LValue {
    /// Local variable.
    Var(String, u32),
    /// Global array element.
    Index(String, Expr, u32),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let name = expr;` — declares a new local.
    Let {
        /// Variable name.
        name: String,
        /// Initializer (also fixes the type).
        init: Expr,
        /// Source line.
        line: u32,
    },
    /// `lvalue = expr;`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition (Boolean).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition (Boolean).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }`
    For {
        /// Init statement (`let` or assignment).
        init: Box<Stmt>,
        /// Condition (Boolean).
        cond: Expr,
        /// Step statement (assignment).
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>, u32),
    /// `break;` — exit the innermost loop.
    Break(u32),
    /// `continue;` — next iteration of the innermost loop (running the
    /// `for` step first).
    Continue(u32),
    /// Bare expression for side effects (e.g. a call).
    ExprStmt(Expr),
}

/// A function declaration.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// Name (entry point is `main`).
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Return type (`None` = void).
    pub ret: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A full compilation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Global declarations, in order.
    pub globals: Vec<GlobalDecl>,
    /// Function declarations, in order.
    pub funcs: Vec<FuncDecl>,
}
