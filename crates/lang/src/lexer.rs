//! MiniC lexer.

use crate::LangError;
use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation/operator, e.g. `+`, `==`, `(`.
    Punct(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

const PUNCTS2: &[&str] = &["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->"];
const PUNCTS1: &[&str] = &[
    "(", ")", "{", "}", "[", "]", ";", ",", "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^",
    "!", ":",
];

/// Tokenize MiniC source. `//` comments run to end of line.
///
/// # Errors
/// Returns a [`LangError`] on malformed literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == '.'
                && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| LangError {
                    line,
                    message: format!("bad float literal {text}"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LangError {
                    line,
                    message: format!("bad int literal {text}"),
                })?)
            };
            out.push(SpannedTok { tok, line });
            continue;
        }
        // Operators: longest match first.
        let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        if let Some(p) = PUNCTS2.iter().find(|p| **p == two) {
            out.push(SpannedTok {
                tok: Tok::Punct(p),
                line,
            });
            i += 2;
            continue;
        }
        let one: String = c.to_string();
        if let Some(p) = PUNCTS1.iter().find(|p| **p == one) {
            out.push(SpannedTok {
                tok: Tok::Punct(p),
                line,
            });
            i += 1;
            continue;
        }
        return Err(LangError {
            line,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo 42 3.5 1e3"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators_greedily() {
        assert_eq!(
            toks("a<=b==c->d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("=="),
                Tok::Ident("c".into()),
                Tok::Punct("->"),
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn int_followed_by_method_like_dot_is_not_float() {
        // "8." without digit after dot: the 8 lexes alone, '.' errors.
        assert!(lex("8.").is_err());
    }

    #[test]
    fn unknown_character_errors_with_line() {
        let e = lex("a\n@").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
