#![warn(missing_docs)]
//! # metaopt-lang
//!
//! **MiniC**: a small C-like language and frontend producing `metaopt-ir`
//! programs. The benchmark suite (`metaopt-suite`) is written in MiniC, so
//! the whole reproduction pipeline — frontend → optimizer → scheduler →
//! cycle simulator — exercises realistic compiler input rather than
//! hand-built IR.
//!
//! The language has `int` (i64), `float` (f64) and `byte` (globals only)
//! data, global arrays, functions, `if`/`while`/`for` control flow, the
//! usual C operator set (without short-circuit evaluation — `&&`/`||` are
//! strict), and a few builtins: `abs`, `min`, `max`, `sqrt`, `i2f`, `f2i`,
//! and `ucall(site, x)` which lowers to the IR's opaque side-effecting call
//! (a compiler *hazard*).
//!
//! ```
//! let src = r#"
//!     global int xs[8] = { 3, 1, 4, 1, 5, 9, 2, 6 };
//!     fn main() -> int {
//!         let sum = 0;
//!         for (let i = 0; i < 8; i = i + 1) {
//!             sum = sum + xs[i];
//!         }
//!         return sum;
//!     }
//! "#;
//! let prog = metaopt_lang::compile(src).unwrap();
//! let out = metaopt_ir::interp::run(&prog, &Default::default()).unwrap();
//! assert_eq!(out.ret, 31);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use metaopt_ir::Program;
use std::fmt;

/// Frontend failure (lexing, parsing, type checking, or lowering).
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// 1-based source line the error was detected on (0 if unknown).
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// Compile MiniC source into an IR [`Program`] (verified, canonical form).
///
/// # Errors
/// Returns a [`LangError`] describing the first problem found.
pub fn compile(src: &str) -> Result<Program, LangError> {
    let toks = lexer::lex(src)?;
    let unit = parser::parse(&toks)?;
    let prog = lower::lower(&unit)?;
    metaopt_ir::verify::verify_program(&prog, metaopt_ir::verify::CfgForm::Canonical).map_err(
        |e| LangError {
            line: 0,
            message: format!("internal: generated IR failed verification: {e}"),
        },
    )?;
    Ok(prog)
}
