//! Type checking and lowering of MiniC to the IR.
//!
//! Typing rules: `int` and `float` never mix implicitly (use `i2f`/`f2i`);
//! comparisons yield `bool` (predicate registers), which coerces to `int`
//! (0/1) in arithmetic contexts and from `int` (`!= 0`) in condition
//! contexts.

use crate::ast::{self, BinOp, ElemType, Expr, FuncDecl, LValue, Lit, Stmt, UnOp, Unit};
use crate::LangError;
use metaopt_ir::builder::FunctionBuilder;
use metaopt_ir::{GlobalData, GlobalInit, Inst, Opcode, Program, RegClass, VReg};
use std::collections::HashMap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ty {
    Int,
    Float,
    Bool,
}

impl Ty {
    fn name(self) -> &'static str {
        match self {
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Bool => "bool",
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Val {
    reg: VReg,
    ty: Ty,
}

#[derive(Clone, Debug)]
struct GlobalInfo {
    addr: i64,
    elem: ElemType,
    len: usize,
}

#[derive(Clone, Debug)]
struct Sig {
    index: i64,
    params: Vec<ast::Type>,
    ret: Option<ast::Type>,
}

fn fail<T>(line: u32, msg: impl Into<String>) -> Result<T, LangError> {
    Err(LangError {
        line,
        message: msg.into(),
    })
}

/// Does this statement list contain a `continue` that binds to the current
/// loop (not descending into nested loops)?
fn contains_continue(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Continue(_) => true,
        Stmt::If { then, els, .. } => contains_continue(then) || contains_continue(els),
        // `continue` inside a nested loop binds to that loop.
        Stmt::While { .. } | Stmt::For { .. } => false,
        _ => false,
    })
}

fn scalar_ty(t: ast::Type) -> Ty {
    match t {
        ast::Type::Int => Ty::Int,
        ast::Type::Float => Ty::Float,
    }
}

/// Lower a parsed [`Unit`] into an IR [`Program`].
///
/// # Errors
/// Reports type errors, unknown names, and arity mismatches.
pub fn lower(unit: &Unit) -> Result<Program, LangError> {
    let mut prog = Program::new();
    let mut globals: HashMap<String, GlobalInfo> = HashMap::new();
    for g in &unit.globals {
        if globals.contains_key(&g.name) {
            return fail(g.line, format!("duplicate global {}", g.name));
        }
        let size = g.len * g.elem.size();
        let init = match g.elem {
            ElemType::Byte => {
                let mut bytes = Vec::with_capacity(g.init.len());
                for l in &g.init {
                    match l {
                        Lit::Int(v) => bytes.push(*v as u8),
                        Lit::Float(_) => return fail(g.line, "float initializer for byte array"),
                    }
                }
                GlobalInit::Bytes(bytes)
            }
            ElemType::Int => {
                let mut vs = Vec::with_capacity(g.init.len());
                for l in &g.init {
                    match l {
                        Lit::Int(v) => vs.push(*v),
                        Lit::Float(_) => return fail(g.line, "float initializer for int array"),
                    }
                }
                GlobalInit::I64s(vs)
            }
            ElemType::Float => {
                let mut vs = Vec::with_capacity(g.init.len());
                for l in &g.init {
                    match l {
                        Lit::Float(v) => vs.push(*v),
                        Lit::Int(v) => vs.push(*v as f64),
                    }
                }
                GlobalInit::F64s(vs)
            }
        };
        let addr = prog.add_global(GlobalData {
            name: g.name.clone(),
            size,
            init,
        });
        globals.insert(
            g.name.clone(),
            GlobalInfo {
                addr,
                elem: g.elem,
                len: g.len,
            },
        );
    }

    let mut sigs: HashMap<String, Sig> = HashMap::new();
    for (i, f) in unit.funcs.iter().enumerate() {
        if sigs.contains_key(&f.name) {
            return fail(f.line, format!("duplicate function {}", f.name));
        }
        sigs.insert(
            f.name.clone(),
            Sig {
                index: i as i64,
                params: f.params.iter().map(|(_, t)| *t).collect(),
                ret: f.ret,
            },
        );
    }

    for f in &unit.funcs {
        let func = FnLowerer {
            globals: &globals,
            sigs: &sigs,
            decl: f,
            fb: FunctionBuilder::new(f.name.clone()),
            scopes: Vec::new(),
            loops: Vec::new(),
        }
        .lower()?;
        prog.add_function(func);
    }
    Ok(prog)
}

/// Branch targets for `break`/`continue` in the enclosing loop.
#[derive(Clone, Copy)]
struct LoopCtx {
    exit: metaopt_ir::BlockId,
    cont: metaopt_ir::BlockId,
}

struct FnLowerer<'a> {
    globals: &'a HashMap<String, GlobalInfo>,
    sigs: &'a HashMap<String, Sig>,
    decl: &'a FuncDecl,
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, Val>>,
    loops: Vec<LoopCtx>,
}

impl<'a> FnLowerer<'a> {
    fn lower(mut self) -> Result<metaopt_ir::Function, LangError> {
        self.scopes.push(HashMap::new());
        for (name, ty) in &self.decl.params {
            let class = match ty {
                ast::Type::Int => RegClass::Int,
                ast::Type::Float => RegClass::Float,
            };
            let reg = self.fb.param(class);
            self.scopes.last_mut().unwrap().insert(
                name.clone(),
                Val {
                    reg,
                    ty: scalar_ty(*ty),
                },
            );
        }
        let terminated = self.stmts(&self.decl.body.clone())?;
        if !terminated {
            match self.decl.ret {
                None => self.fb.ret(None),
                Some(ast::Type::Int) => {
                    let z = self.fb.movi(0);
                    self.fb.ret(Some(z));
                }
                Some(ast::Type::Float) => {
                    // Return 0 as the integer bit pattern (convention: float
                    // mains return a checksum via f2i; a fallthrough returns
                    // integer 0).
                    let z = self.fb.movi(0);
                    self.fb.ret(Some(z));
                }
            }
        }
        Ok(self.fb.finish())
    }

    fn lookup(&self, name: &str) -> Option<Val> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        None
    }

    /// Lower a list of statements; returns `true` if control definitely
    /// left the current block (return on all paths).
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<bool, LangError> {
        self.scopes.push(HashMap::new());
        let mut terminated = false;
        for s in stmts {
            if terminated {
                // Unreachable code: still lower into a fresh dead block so
                // we type-check it, but the result can never run.
                let dead = self.fb.new_block();
                self.fb.switch_to(dead);
            }
            terminated = self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(terminated)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<bool, LangError> {
        match s {
            Stmt::Let { name, init, line } => {
                let v = self.expr(init)?;
                let v = self.coerce_bool_to_int(v);
                if self.scopes.last().unwrap().contains_key(name) {
                    return fail(*line, format!("redeclaration of {name} in the same scope"));
                }
                // Dedicated mutable cell so later assignments can overwrite.
                let class = match v.ty {
                    Ty::Int => RegClass::Int,
                    Ty::Float => RegClass::Float,
                    Ty::Bool => unreachable!("coerced above"),
                };
                let cell = self.fb.new_vreg(class);
                self.copy_into(cell, v);
                self.scopes.last_mut().unwrap().insert(
                    name.clone(),
                    Val {
                        reg: cell,
                        ty: v.ty,
                    },
                );
                Ok(false)
            }
            Stmt::Assign { target, value } => {
                let v = self.expr(value)?;
                match target {
                    LValue::Var(name, line) => {
                        if let Some(dst) = self.lookup(name) {
                            let v = self.coerce_bool_to_int(v);
                            if dst.ty != v.ty {
                                return fail(
                                    *line,
                                    format!(
                                        "assignment type mismatch: {name} is {}, value is {}",
                                        dst.ty.name(),
                                        v.ty.name()
                                    ),
                                );
                            }
                            self.copy_into(dst.reg, v);
                            Ok(false)
                        } else if self.globals.contains_key(name) {
                            let zero = Expr::Int(0, *line);
                            self.store_global(name, &zero, v, *line)?;
                            Ok(false)
                        } else {
                            fail(*line, format!("unknown variable {name}"))
                        }
                    }
                    LValue::Index(name, ix, line) => {
                        self.store_global(name, ix, v, *line)?;
                        Ok(false)
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                let p = self.cond(cond)?;
                let then_b = self.fb.new_block();
                let else_b = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.branch(p, then_b, else_b);
                self.fb.switch_to(then_b);
                let t_term = self.stmts(then)?;
                if !t_term {
                    self.fb.br(join);
                }
                self.fb.switch_to(else_b);
                let e_term = self.stmts(els)?;
                if !e_term {
                    self.fb.br(join);
                }
                self.fb.switch_to(join);
                if t_term && e_term {
                    // Join is unreachable; it still needs a terminator,
                    // which the caller's fallthrough handling provides by
                    // treating this as terminated and re-targeting a dead
                    // block — so terminate it here.
                    self.fb.ret(None);
                    return Ok(true);
                }
                Ok(false)
            }
            Stmt::While { cond, body } => {
                let hdr = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.br(hdr);
                self.fb.switch_to(hdr);
                let p = self.cond(cond)?;
                self.fb.branch(p, body_b, exit);
                self.fb.switch_to(body_b);
                self.loops.push(LoopCtx { exit, cont: hdr });
                let terminated = self.stmts(body)?;
                self.loops.pop();
                if !terminated {
                    self.fb.br(hdr);
                }
                self.fb.switch_to(exit);
                Ok(false)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let init_term = self.stmt(init)?;
                debug_assert!(!init_term);
                let hdr = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                // `continue` must run the step first, so it needs a landing
                // block; only materialize one when the body actually uses
                // `continue` (keeping the canonical 2-block loop shape that
                // the unroller and the calibrated benchmarks rely on).
                let step_b = contains_continue(body).then(|| self.fb.new_block());
                self.fb.br(hdr);
                self.fb.switch_to(hdr);
                let p = self.cond(cond)?;
                self.fb.branch(p, body_b, exit);
                self.fb.switch_to(body_b);
                self.loops.push(LoopCtx {
                    exit,
                    cont: step_b.unwrap_or(hdr),
                });
                let terminated = self.stmts(body)?;
                self.loops.pop();
                match step_b {
                    Some(sb) => {
                        if !terminated {
                            self.fb.br(sb);
                        }
                        self.fb.switch_to(sb);
                        let step_term = self.stmt(step)?;
                        debug_assert!(!step_term);
                        self.fb.br(hdr);
                    }
                    None => {
                        if !terminated {
                            let step_term = self.stmt(step)?;
                            debug_assert!(!step_term);
                            self.fb.br(hdr);
                        }
                    }
                }
                self.fb.switch_to(exit);
                self.scopes.pop();
                Ok(false)
            }
            Stmt::Break(line) => {
                let Some(ctx) = self.loops.last() else {
                    return fail(*line, "break outside of a loop");
                };
                self.fb.br(ctx.exit);
                Ok(true)
            }
            Stmt::Continue(line) => {
                let Some(ctx) = self.loops.last() else {
                    return fail(*line, "continue outside of a loop");
                };
                self.fb.br(ctx.cont);
                Ok(true)
            }
            Stmt::Return(val, line) => {
                match (val, self.decl.ret) {
                    (None, None) => self.fb.ret(None),
                    (Some(e), Some(want)) => {
                        let v = self.expr(e)?;
                        let v = self.coerce_bool_to_int(v);
                        if v.ty != scalar_ty(want) {
                            return fail(
                                *line,
                                format!(
                                    "return type mismatch: expected {}, got {}",
                                    scalar_ty(want).name(),
                                    v.ty.name()
                                ),
                            );
                        }
                        match v.ty {
                            Ty::Int => self.fb.ret(Some(v.reg)),
                            Ty::Float => {
                                // Functions return through integer registers;
                                // float values pass their raw bit pattern.
                                let bits = self.fb.new_vreg(RegClass::Int);
                                self.fb
                                    .push(Inst::new(Opcode::FBits).dst(bits).args(&[v.reg]));
                                self.fb.ret(Some(bits));
                            }
                            Ty::Bool => unreachable!(),
                        }
                    }
                    (None, Some(_)) => return fail(*line, "missing return value"),
                    (Some(_), None) => return fail(*line, "void function returns a value"),
                }
                Ok(true)
            }
            Stmt::ExprStmt(e) => {
                self.expr(e)?;
                Ok(false)
            }
        }
    }

    fn copy_into(&mut self, dst: VReg, v: Val) {
        let op = match v.ty {
            Ty::Int => Opcode::Mov,
            Ty::Float => Opcode::FMov,
            Ty::Bool => Opcode::PMov,
        };
        self.fb.push(Inst::new(op).dst(dst).args(&[v.reg]));
    }

    fn coerce_bool_to_int(&mut self, v: Val) -> Val {
        if v.ty == Ty::Bool {
            let r = self.fb.new_vreg(RegClass::Int);
            self.fb.push(Inst::new(Opcode::P2I).dst(r).args(&[v.reg]));
            Val {
                reg: r,
                ty: Ty::Int,
            }
        } else {
            v
        }
    }

    /// Lower an expression in *condition* context: result is a predicate.
    fn cond(&mut self, e: &Expr) -> Result<VReg, LangError> {
        let v = self.expr(e)?;
        match v.ty {
            Ty::Bool => Ok(v.reg),
            Ty::Int => {
                let p = self.fb.new_vreg(RegClass::Pred);
                self.fb.push(Inst::new(Opcode::I2P).dst(p).args(&[v.reg]));
                Ok(p)
            }
            Ty::Float => fail(
                e.line(),
                "float used as a condition (compare it explicitly)",
            ),
        }
    }

    fn addr_of(
        &mut self,
        name: &str,
        index: &Expr,
        line: u32,
    ) -> Result<(VReg, ElemType), LangError> {
        let Some(g) = self.globals.get(name).cloned() else {
            return fail(line, format!("unknown array {name}"));
        };
        let iv = self.expr(index)?;
        let iv = self.coerce_bool_to_int(iv);
        if iv.ty != Ty::Int {
            return fail(line, "array index must be int");
        }
        let scaled = match g.elem.size() {
            1 => iv.reg,
            8 => self.fb.muli(iv.reg, 8),
            _ => unreachable!(),
        };
        let base = self.fb.movi(g.addr);
        let addr = self.fb.add(base, scaled);
        let _ = g.len; // bounds are enforced dynamically by the interpreter/simulator
        Ok((addr, g.elem))
    }

    fn store_global(
        &mut self,
        name: &str,
        index: &Expr,
        v: Val,
        line: u32,
    ) -> Result<(), LangError> {
        let (addr, elem) = self.addr_of(name, index, line)?;
        let v = self.coerce_bool_to_int(v);
        match (elem, v.ty) {
            (ElemType::Byte, Ty::Int) => self.fb.st1(addr, v.reg, 0),
            (ElemType::Int, Ty::Int) => self.fb.st8(addr, v.reg, 0),
            (ElemType::Float, Ty::Float) => self.fb.fst(addr, v.reg, 0),
            (e, t) => {
                return fail(
                    line,
                    format!("cannot store {} into {name} ({e:?} elements)", t.name()),
                )
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<Val, LangError> {
        match e {
            Expr::Int(v, _) => {
                let r = self.fb.movi(*v);
                Ok(Val {
                    reg: r,
                    ty: Ty::Int,
                })
            }
            Expr::Float(v, _) => {
                let r = self.fb.fmovi(*v);
                Ok(Val {
                    reg: r,
                    ty: Ty::Float,
                })
            }
            Expr::Var(name, line) => {
                if let Some(v) = self.lookup(name) {
                    return Ok(v);
                }
                if self.globals.contains_key(name) {
                    let zero = Expr::Int(0, *line);
                    return self.load_global(name, &zero, *line);
                }
                fail(*line, format!("unknown variable {name}"))
            }
            Expr::Index(name, ix, line) => self.load_global(name, ix, *line),
            Expr::Call(name, args, line) => self.call(name, args, *line),
            Expr::Unary(op, inner, line) => {
                let v = self.expr(inner)?;
                match (op, v.ty) {
                    (UnOp::Neg, Ty::Int) => {
                        let r = self.fb.new_vreg(RegClass::Int);
                        self.fb.push(Inst::new(Opcode::Neg).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Int,
                        })
                    }
                    (UnOp::Neg, Ty::Float) => {
                        let r = self.fb.new_vreg(RegClass::Float);
                        self.fb.push(Inst::new(Opcode::FNeg).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Float,
                        })
                    }
                    (UnOp::Not, Ty::Bool) => {
                        let r = self.fb.new_vreg(RegClass::Pred);
                        self.fb.push(Inst::new(Opcode::PNot).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Bool,
                        })
                    }
                    (UnOp::Not, Ty::Int) => {
                        let p = self.fb.new_vreg(RegClass::Pred);
                        self.fb.push(Inst::new(Opcode::I2P).dst(p).args(&[v.reg]));
                        let r = self.fb.new_vreg(RegClass::Pred);
                        self.fb.push(Inst::new(Opcode::PNot).dst(r).args(&[p]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Bool,
                        })
                    }
                    (op, t) => fail(*line, format!("bad operand {t:?} for unary {op:?}")),
                }
            }
            Expr::Binary(op, a, b, line) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                self.binary(*op, va, vb, *line)
            }
        }
    }

    fn load_global(&mut self, name: &str, ix: &Expr, line: u32) -> Result<Val, LangError> {
        let (addr, elem) = self.addr_of(name, ix, line)?;
        Ok(match elem {
            ElemType::Byte => Val {
                reg: self.fb.ld1(addr, 0),
                ty: Ty::Int,
            },
            ElemType::Int => Val {
                reg: self.fb.ld8(addr, 0),
                ty: Ty::Int,
            },
            ElemType::Float => Val {
                reg: self.fb.fld(addr, 0),
                ty: Ty::Float,
            },
        })
    }

    fn binary(&mut self, op: BinOp, a: Val, b: Val, line: u32) -> Result<Val, LangError> {
        use BinOp::*;
        // Logical ops accept bool (or int coerced to bool).
        if matches!(op, LAnd | LOr) {
            let pa = self.coerce_to_bool(a, line)?;
            let pb = self.coerce_to_bool(b, line)?;
            let opc = if op == LAnd {
                Opcode::PAnd
            } else {
                Opcode::POr
            };
            let r = self.fb.new_vreg(RegClass::Pred);
            self.fb.push(Inst::new(opc).dst(r).args(&[pa, pb]));
            return Ok(Val {
                reg: r,
                ty: Ty::Bool,
            });
        }
        let a = self.coerce_bool_to_int(a);
        let b = self.coerce_bool_to_int(b);
        if a.ty != b.ty {
            return fail(
                line,
                format!(
                    "type mismatch: {} {op:?} {} (use i2f/f2i to convert)",
                    a.ty.name(),
                    b.ty.name()
                ),
            );
        }
        let is_float = a.ty == Ty::Float;
        // Comparisons.
        if matches!(op, Eq | Ne | Lt | Le | Gt | Ge) {
            let r = self.fb.new_vreg(RegClass::Pred);
            if is_float {
                match op {
                    Eq => self
                        .fb
                        .push(Inst::new(Opcode::FCmpEq).dst(r).args(&[a.reg, b.reg])),
                    Ne => {
                        let t = self.fb.new_vreg(RegClass::Pred);
                        self.fb
                            .push(Inst::new(Opcode::FCmpEq).dst(t).args(&[a.reg, b.reg]));
                        self.fb.push(Inst::new(Opcode::PNot).dst(r).args(&[t]));
                    }
                    Lt => self
                        .fb
                        .push(Inst::new(Opcode::FCmpLt).dst(r).args(&[a.reg, b.reg])),
                    Le => self
                        .fb
                        .push(Inst::new(Opcode::FCmpLe).dst(r).args(&[a.reg, b.reg])),
                    Gt => self
                        .fb
                        .push(Inst::new(Opcode::FCmpLt).dst(r).args(&[b.reg, a.reg])),
                    Ge => self
                        .fb
                        .push(Inst::new(Opcode::FCmpLe).dst(r).args(&[b.reg, a.reg])),
                    _ => unreachable!(),
                }
            } else {
                match op {
                    Eq => self
                        .fb
                        .push(Inst::new(Opcode::CmpEq).dst(r).args(&[a.reg, b.reg])),
                    Ne => self
                        .fb
                        .push(Inst::new(Opcode::CmpNe).dst(r).args(&[a.reg, b.reg])),
                    Lt => self
                        .fb
                        .push(Inst::new(Opcode::CmpLt).dst(r).args(&[a.reg, b.reg])),
                    Le => self
                        .fb
                        .push(Inst::new(Opcode::CmpLe).dst(r).args(&[a.reg, b.reg])),
                    Gt => self
                        .fb
                        .push(Inst::new(Opcode::CmpLt).dst(r).args(&[b.reg, a.reg])),
                    Ge => self
                        .fb
                        .push(Inst::new(Opcode::CmpLe).dst(r).args(&[b.reg, a.reg])),
                    _ => unreachable!(),
                }
            }
            return Ok(Val {
                reg: r,
                ty: Ty::Bool,
            });
        }
        // Arithmetic / bitwise.
        let opc = if is_float {
            match op {
                Add => Opcode::FAdd,
                Sub => Opcode::FSub,
                Mul => Opcode::FMul,
                Div => Opcode::FDiv,
                other => return fail(line, format!("operator {other:?} not defined on float")),
            }
        } else {
            match op {
                Add => Opcode::Add,
                Sub => Opcode::Sub,
                Mul => Opcode::Mul,
                Div => Opcode::Div,
                Rem => Opcode::Rem,
                And => Opcode::And,
                Or => Opcode::Or,
                Xor => Opcode::Xor,
                Shl => Opcode::Shl,
                Shr => Opcode::Shr,
                _ => unreachable!(),
            }
        };
        let class = if is_float {
            RegClass::Float
        } else {
            RegClass::Int
        };
        let r = self.fb.new_vreg(class);
        self.fb.push(Inst::new(opc).dst(r).args(&[a.reg, b.reg]));
        Ok(Val { reg: r, ty: a.ty })
    }

    fn coerce_to_bool(&mut self, v: Val, line: u32) -> Result<VReg, LangError> {
        match v.ty {
            Ty::Bool => Ok(v.reg),
            Ty::Int => {
                let p = self.fb.new_vreg(RegClass::Pred);
                self.fb.push(Inst::new(Opcode::I2P).dst(p).args(&[v.reg]));
                Ok(p)
            }
            Ty::Float => fail(line, "float used in logical operation"),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Val, LangError> {
        // Builtins first.
        match name {
            "abs" | "sqrt" | "i2f" | "f2i" => {
                if args.len() != 1 {
                    return fail(line, format!("{name} takes one argument"));
                }
                let v = self.expr(&args[0])?;
                let v = self.coerce_bool_to_int(v);
                return match (name, v.ty) {
                    ("abs", Ty::Int) => {
                        let r = self.fb.new_vreg(RegClass::Int);
                        self.fb.push(Inst::new(Opcode::Abs).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Int,
                        })
                    }
                    ("abs", Ty::Float) => {
                        let r = self.fb.new_vreg(RegClass::Float);
                        self.fb.push(Inst::new(Opcode::FAbs).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Float,
                        })
                    }
                    ("sqrt", Ty::Float) => {
                        let r = self.fb.new_vreg(RegClass::Float);
                        self.fb.push(Inst::new(Opcode::FSqrt).dst(r).args(&[v.reg]));
                        Ok(Val {
                            reg: r,
                            ty: Ty::Float,
                        })
                    }
                    ("i2f", Ty::Int) => Ok(Val {
                        reg: self.fb.i2f(v.reg),
                        ty: Ty::Float,
                    }),
                    ("f2i", Ty::Float) => Ok(Val {
                        reg: self.fb.f2i(v.reg),
                        ty: Ty::Int,
                    }),
                    (n, t) => fail(line, format!("{n} not defined on {}", t.name())),
                };
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return fail(line, format!("{name} takes two arguments"));
                }
                let a = self.expr(&args[0])?;
                let a = self.coerce_bool_to_int(a);
                let b = self.expr(&args[1])?;
                let b = self.coerce_bool_to_int(b);
                if a.ty != b.ty {
                    return fail(line, format!("{name} arguments must have the same type"));
                }
                let (opc, class, ty) = match (name, a.ty) {
                    ("min", Ty::Int) => (Opcode::Min, RegClass::Int, Ty::Int),
                    ("max", Ty::Int) => (Opcode::Max, RegClass::Int, Ty::Int),
                    ("min", Ty::Float) => (Opcode::FMin, RegClass::Float, Ty::Float),
                    ("max", Ty::Float) => (Opcode::FMax, RegClass::Float, Ty::Float),
                    (n, t) => return fail(line, format!("{n} not defined on {}", t.name())),
                };
                let r = self.fb.new_vreg(class);
                self.fb.push(Inst::new(opc).dst(r).args(&[a.reg, b.reg]));
                return Ok(Val { reg: r, ty });
            }
            "ucall" => {
                if args.len() != 2 {
                    return fail(line, "ucall takes (site, value)");
                }
                let Expr::Int(site, _) = &args[0] else {
                    return fail(line, "ucall site must be an integer literal");
                };
                let v = self.expr(&args[1])?;
                let v = self.coerce_bool_to_int(v);
                if v.ty != Ty::Int {
                    return fail(line, "ucall value must be int");
                }
                let r = self.fb.unsafe_call(*site, v.reg);
                return Ok(Val {
                    reg: r,
                    ty: Ty::Int,
                });
            }
            _ => {}
        }
        // User function.
        let Some(sig) = self.sigs.get(name).cloned() else {
            return fail(line, format!("unknown function {name}"));
        };
        if sig.params.len() != args.len() {
            return fail(
                line,
                format!(
                    "{name} takes {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        let mut regs = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(&sig.params) {
            let v = self.expr(a)?;
            let v = self.coerce_bool_to_int(v);
            if v.ty != scalar_ty(*want) {
                return fail(
                    line,
                    format!(
                        "argument type mismatch in call to {name}: expected {}, got {}",
                        scalar_ty(*want).name(),
                        v.ty.name()
                    ),
                );
            }
            regs.push(v.reg);
        }
        let r = self.fb.call(sig.index, &regs);
        match sig.ret {
            Some(ast::Type::Float) => {
                // Returned through the integer file as a raw bit pattern;
                // reconstruct the float losslessly.
                let f = self.fb.new_vreg(RegClass::Float);
                self.fb.push(Inst::new(Opcode::BitsF).dst(f).args(&[r]));
                Ok(Val {
                    reg: f,
                    ty: Ty::Float,
                })
            }
            _ => Ok(Val {
                reg: r,
                ty: Ty::Int,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use metaopt_ir::interp::{run, RunConfig};

    fn eval(src: &str) -> i64 {
        let prog = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        run(&prog, &RunConfig::default()).unwrap().ret
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("fn main() -> int { return 2 + 3 * 4; }"), 14);
        assert_eq!(eval("fn main() -> int { return (2 + 3) * 4; }"), 20);
        assert_eq!(eval("fn main() -> int { return 7 % 3 + 10 / 4; }"), 3);
        assert_eq!(eval("fn main() -> int { return 1 << 4 >> 2; }"), 4);
        assert_eq!(eval("fn main() -> int { return -5 + 2; }"), -3);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("fn main() -> int { return 3 < 4; }"), 1);
        assert_eq!(eval("fn main() -> int { return 3 >= 4; }"), 0);
        assert_eq!(eval("fn main() -> int { return 1 < 2 && 3 < 4; }"), 1);
        assert_eq!(eval("fn main() -> int { return 1 > 2 || 3 > 4; }"), 0);
        assert_eq!(eval("fn main() -> int { return !(1 > 2); }"), 1);
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            eval("fn main() -> int { let s = 0; for (let i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"),
            45
        );
        assert_eq!(
            eval("fn main() -> int { let x = 5; if (x < 3) { return 1; } else if (x < 7) { return 2; } return 3; }"),
            2
        );
        assert_eq!(
            eval("fn main() -> int { let n = 100; let c = 0; while (n > 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } c = c + 1; } return c; }"),
            25
        );
    }

    #[test]
    fn globals_and_arrays() {
        assert_eq!(
            eval("global int xs[4] = { 10, 20, 30, 40 }; fn main() -> int { xs[1] = xs[1] + 5; return xs[0] + xs[1]; }"),
            35
        );
        assert_eq!(
            eval("global byte buf[8] = { 255, 1 }; fn main() -> int { return buf[0] + buf[1]; }"),
            256
        );
        assert_eq!(
            eval("global int acc; fn main() -> int { acc = 7; return acc * 2; }"),
            14
        );
    }

    #[test]
    fn floats_and_conversions() {
        assert_eq!(
            eval("fn main() -> int { let x = 2.5; let y = x * 4.0; return f2i(y); }"),
            10
        );
        assert_eq!(eval("fn main() -> int { return f2i(sqrt(i2f(49))); }"), 7);
        assert_eq!(
            eval("global float fs[2] = { 1.5, 2.5 }; fn main() -> int { return f2i(fs[0] + fs[1]); }"),
            4
        );
        assert_eq!(eval("fn main() -> int { return 2.0 < 3.0; }"), 1);
    }

    #[test]
    fn functions_and_recursion_free_calls() {
        assert_eq!(
            eval(
                r#"
                fn sq(x: int) -> int { return x * x; }
                fn hyp(a: int, b: int) -> int { return sq(a) + sq(b); }
                fn main() -> int { return hyp(3, 4); }
            "#
            ),
            25
        );
        assert_eq!(
            eval(
                r#"
                fn scale(x: float, k: float) -> float { return x * k; }
                fn main() -> int { return f2i(scale(3.0, 7.0)); }
            "#
            ),
            21
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(
            eval("fn main() -> int { return abs(-9) + min(3, 5) + max(3, 5); }"),
            17
        );
        assert_eq!(
            eval("fn main() -> int { let a = ucall(1, 42); let b = ucall(1, 42); return a != b; }"),
            1
        );
    }

    #[test]
    fn type_errors_reported() {
        assert!(crate::compile("fn main() -> int { return 1 + 2.0; }").is_err());
        assert!(crate::compile("fn main() -> int { return undefined_var; }").is_err());
        assert!(crate::compile("fn main() -> int { let x = 1; let x = 2; return x; }").is_err());
        assert!(crate::compile("fn main() -> int { return nosuchfn(1); }").is_err());
        assert!(crate::compile("fn f(a: int) {} fn main() -> int { f(1, 2); return 0; }").is_err());
        assert!(crate::compile("global float g; fn main() -> int { g = 1; return 0; }").is_err());
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        assert_eq!(
            eval("fn main() -> int { let x = 1; if (1 < 2) { let x = 10; x = x + 1; } return x; }"),
            1
        );
    }

    #[test]
    fn early_return_with_trailing_code() {
        assert_eq!(
            eval("fn main() -> int { if (1 < 2) { return 5; } else { return 6; } }"),
            5
        );
        assert_eq!(eval("fn main() -> int { return 1; return 2; }"), 1);
    }
}
