//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::{SpannedTok, Tok};
use crate::LangError;

struct P<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
}

impl<'a> P<'a> {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        Err(LangError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(q)) if q == s)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), LangError> {
        if self.at_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected `{p}`, found `{}`",
                self.peek().map_or("<eof>".to_string(), |t| t.to_string())
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {t:?}"))
            }
        }
    }

    fn parse_type(&mut self) -> Result<Type, LangError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == "int" => Ok(Type::Int),
            Some(Tok::Ident(s)) if s == "float" => Ok(Type::Float),
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected type, found {t:?}"))
            }
        }
    }

    fn parse_elem_type(&mut self) -> Result<ElemType, LangError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == "int" => Ok(ElemType::Int),
            Some(Tok::Ident(s)) if s == "float" => Ok(ElemType::Float),
            Some(Tok::Ident(s)) if s == "byte" => Ok(ElemType::Byte),
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected element type, found {t:?}"))
            }
        }
    }

    fn parse_lit(&mut self) -> Result<Lit, LangError> {
        let neg = if self.at_punct("-") {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Lit::Int(if neg { -v } else { v })),
            Some(Tok::Float(v)) => Ok(Lit::Float(if neg { -v } else { v })),
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected literal, found {t:?}"))
            }
        }
    }

    fn parse_global(&mut self) -> Result<GlobalDecl, LangError> {
        let line = self.line();
        self.pos += 1; // `global`
        let elem = self.parse_elem_type()?;
        let name = self.expect_ident()?;
        let len = if self.at_punct("[") {
            self.pos += 1;
            let n = match self.bump() {
                Some(Tok::Int(v)) if v > 0 => v as usize,
                t => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err(format!("expected positive array length, found {t:?}"));
                }
            };
            self.expect_punct("]")?;
            n
        } else {
            1
        };
        let mut init = Vec::new();
        if self.at_punct("=") {
            self.pos += 1;
            if self.at_punct("{") {
                self.pos += 1;
                while !self.at_punct("}") {
                    init.push(self.parse_lit()?);
                    if self.at_punct(",") {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect_punct("}")?;
            } else {
                init.push(self.parse_lit()?);
            }
        }
        if init.len() > len {
            return self.err(format!(
                "global {name}: {} initializers for {len} elements",
                init.len()
            ));
        }
        self.expect_punct(";")?;
        Ok(GlobalDecl {
            name,
            elem,
            len,
            init,
            line,
        })
    }

    fn parse_func(&mut self) -> Result<FuncDecl, LangError> {
        let line = self.line();
        self.pos += 1; // `fn`
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        while !self.at_punct(")") {
            let pname = self.expect_ident()?;
            self.expect_punct(":")?;
            let ty = self.parse_type()?;
            params.push((pname, ty));
            if self.at_punct(",") {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_punct(")")?;
        let ret = if self.at_punct("->") {
            self.pos += 1;
            Some(self.parse_type()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.at_punct("}") {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            out.push(self.parse_stmt()?);
        }
        self.expect_punct("}")?;
        Ok(out)
    }

    fn parse_simple_stmt(&mut self) -> Result<Stmt, LangError> {
        // `let x = e` or `lvalue = e` (no trailing `;` — used by for-headers
        // too).
        let line = self.line();
        if self.at_ident("let") {
            self.pos += 1;
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let init = self.parse_expr()?;
            return Ok(Stmt::Let { name, init, line });
        }
        // lvalue `=` expr, or a bare expression statement.
        let start = self.pos;
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            self.pos += 1;
            if self.at_punct("=") {
                self.pos += 1;
                let value = self.parse_expr()?;
                return Ok(Stmt::Assign {
                    target: LValue::Var(name, line),
                    value,
                });
            }
            if self.at_punct("[") {
                self.pos += 1;
                let index = self.parse_expr()?;
                self.expect_punct("]")?;
                if self.at_punct("=") {
                    self.pos += 1;
                    let value = self.parse_expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Index(name, index, line),
                        value,
                    });
                }
            }
            self.pos = start;
        }
        let e = self.parse_expr()?;
        Ok(Stmt::ExprStmt(e))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        if self.at_ident("if") {
            self.pos += 1;
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = self.parse_block()?;
            let els = if self.at_ident("else") {
                self.pos += 1;
                if self.at_ident("if") {
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.at_ident("while") {
            self.pos += 1;
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_ident("for") {
            self.pos += 1;
            self.expect_punct("(")?;
            let init = Box::new(self.parse_simple_stmt()?);
            self.expect_punct(";")?;
            let cond = self.parse_expr()?;
            self.expect_punct(";")?;
            let step = Box::new(self.parse_simple_stmt()?);
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.at_ident("break") {
            self.pos += 1;
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.at_ident("continue") {
            self.pos += 1;
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        if self.at_ident("return") {
            self.pos += 1;
            let val = if self.at_punct(";") {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(val, line));
        }
        let s = self.parse_simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    // Expression parsing: precedence climbing.
    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_bin(0)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek()? {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        // (operator, precedence) — higher binds tighter.
        Some(match op {
            "||" => (BinOp::LOr, 1),
            "&&" => (BinOp::LAnd, 2),
            "|" => (BinOp::Or, 3),
            "^" => (BinOp::Xor, 4),
            "&" => (BinOp::And, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.pos += 1;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        if self.at_punct("-") {
            self.pos += 1;
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e), line));
        }
        if self.at_punct("!") {
            self.pos += 1;
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e), line));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v, line)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v, line)),
            Some(Tok::Punct("(")) => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.at_punct("(") {
                    self.pos += 1;
                    let mut args = Vec::new();
                    while !self.at_punct(")") {
                        args.push(self.parse_expr()?);
                        if self.at_punct(",") {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                    return Ok(Expr::Call(name, args, line));
                }
                if self.at_punct("[") {
                    self.pos += 1;
                    let ix = self.parse_expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(ix), line));
                }
                Ok(Expr::Var(name, line))
            }
            t => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {t:?}"))
            }
        }
    }
}

/// Parse a token stream into a [`Unit`].
///
/// # Errors
/// Returns a [`LangError`] with the offending line.
pub fn parse(toks: &[SpannedTok]) -> Result<Unit, LangError> {
    let mut p = P { toks, pos: 0 };
    let mut unit = Unit::default();
    while p.peek().is_some() {
        if p.at_ident("global") {
            unit.globals.push(p.parse_global()?);
        } else if p.at_ident("fn") {
            unit.funcs.push(p.parse_func()?);
        } else {
            return p.err(format!(
                "expected `global` or `fn`, found `{}`",
                p.peek().map_or("<eof>".to_string(), |t| t.to_string())
            ));
        }
    }
    Ok(unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals() {
        let u =
            parse_src("global int xs[4] = { 1, 2, -3 }; global byte b[16]; global float f = 2.5;");
        assert_eq!(u.globals.len(), 3);
        assert_eq!(u.globals[0].len, 4);
        assert_eq!(
            u.globals[0].init,
            vec![Lit::Int(1), Lit::Int(2), Lit::Int(-3)]
        );
        assert_eq!(u.globals[1].elem, ElemType::Byte);
        assert_eq!(u.globals[2].len, 1);
    }

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse_src(
            r#"
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
                }
                while (s > 100) { s = s - 100; }
                return s;
            }
        "#,
        );
        assert_eq!(u.funcs.len(), 1);
        assert_eq!(u.funcs[0].params, vec![("n".to_string(), Type::Int)]);
        assert_eq!(u.funcs[0].ret, Some(Type::Int));
        assert_eq!(u.funcs[0].body.len(), 4);
    }

    #[test]
    fn precedence_is_c_like() {
        let u = parse_src("fn f() -> int { return 1 + 2 * 3 < 4 && 5 == 6; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body[0] else {
            panic!()
        };
        // Top must be &&.
        let Expr::Binary(BinOp::LAnd, l, _, _) = e else {
            panic!("top is {e:?}")
        };
        let Expr::Binary(BinOp::Lt, ll, _, _) = l.as_ref() else {
            panic!("lhs is {l:?}")
        };
        assert!(matches!(ll.as_ref(), Expr::Binary(BinOp::Add, _, _, _)));
    }

    #[test]
    fn parses_calls_and_indexing() {
        let u = parse_src("fn f() { g(xs[i], 2); xs[0] = h(); }");
        assert_eq!(u.funcs[0].body.len(), 2);
        assert!(matches!(
            &u.funcs[0].body[0],
            Stmt::ExprStmt(Expr::Call(..))
        ));
        assert!(matches!(
            &u.funcs[0].body[1],
            Stmt::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn else_if_chains() {
        let u = parse_src("fn f(x: int) { if (x < 0) { } else if (x == 0) { } else { } }");
        let Stmt::If { els, .. } = &u.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0], Stmt::If { .. }));
    }

    #[test]
    fn errors_have_lines() {
        let toks = lex("fn f() {\n  let = 3;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
