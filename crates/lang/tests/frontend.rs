//! Frontend integration tests: semantics, diagnostics, and generated-IR
//! structure for MiniC programs beyond the unit tests' basics.

use metaopt_ir::interp::{run, RunConfig};
use metaopt_lang::compile;

fn eval(src: &str) -> i64 {
    let prog = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    run(&prog, &RunConfig::default()).unwrap().ret
}

fn rejects(src: &str, needle: &str) {
    let e = compile(src).expect_err("must be rejected");
    assert!(
        e.message.contains(needle),
        "error {:?} should mention {needle:?}",
        e.message
    );
}

#[test]
fn operator_semantics_match_rust() {
    // Signed division/remainder truncate toward zero; shifts mask to 63.
    assert_eq!(eval("fn main() -> int { return -7 / 2; }"), -7i64 / 2);
    assert_eq!(eval("fn main() -> int { return -7 % 3; }"), -7i64 % 3);
    assert_eq!(
        eval("fn main() -> int { return 1 << 70; }"),
        1i64.wrapping_shl(70)
    );
    assert_eq!(eval("fn main() -> int { return -16 >> 2; }"), -16i64 >> 2);
    assert_eq!(
        eval("fn main() -> int { return 12 & 10 | 1 ^ 6; }"),
        12 & 10 | 1 ^ 6
    );
}

#[test]
fn division_by_zero_is_total() {
    assert_eq!(eval("fn main() -> int { return 5 / 0 + 5 % 0; }"), 0);
    assert_eq!(eval("fn main() -> int { return f2i(5.0 / 0.0); }"), 0);
}

#[test]
fn deeply_nested_control_flow() {
    let src = r#"
        fn main() -> int {
            let acc = 0;
            for (let i = 0; i < 4; i = i + 1) {
                for (let j = 0; j < 4; j = j + 1) {
                    for (let k = 0; k < 4; k = k + 1) {
                        if (i == j) {
                            if (j == k) { acc = acc + 100; } else { acc = acc + 10; }
                        } else if (j < k) {
                            acc = acc + 1;
                        }
                    }
                }
            }
            return acc;
        }
    "#;
    // Mirror computation in Rust.
    let mut acc = 0;
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                if i == j {
                    acc += if j == k { 100 } else { 10 };
                } else if j < k {
                    acc += 1;
                }
            }
        }
    }
    assert_eq!(eval(src), acc);
}

#[test]
fn while_with_complex_condition() {
    assert_eq!(
        eval(
            "fn main() -> int { let x = 0; while (x < 10 && x * x < 50) { x = x + 1; } return x; }"
        ),
        8
    );
}

#[test]
fn byte_array_wraps_to_unsigned() {
    assert_eq!(
        eval("global byte b[4]; fn main() -> int { b[0] = 300; return b[0]; }"),
        300 % 256
    );
    assert_eq!(
        eval("global byte b[4]; fn main() -> int { b[0] = -1; return b[0]; }"),
        255
    );
}

#[test]
fn comparison_results_usable_as_ints() {
    assert_eq!(
        eval("fn main() -> int { let t = 3 < 4; let f = 4 < 3; return t * 10 + f; }"),
        10
    );
    assert_eq!(
        eval("fn main() -> int { return (1 < 2) + (3 < 4) + (5 < 4); }"),
        2
    );
}

#[test]
fn float_returning_functions_are_lossless() {
    // Regression test for the FBits/BitsF calling convention: fractional
    // values must survive the call boundary exactly.
    assert_eq!(
        eval(
            r#"
            fn half(x: float) -> float { return x * 0.5; }
            fn main() -> int { return f2i(half(0.5) * 1000.0); }
        "#
        ),
        250
    );
}

#[test]
fn early_returns_in_loops() {
    assert_eq!(
        eval(
            r#"
            fn find(limit: int) -> int {
                for (let i = 0; i < limit; i = i + 1) {
                    if (i * i > 50) { return i; }
                }
                return -1;
            }
            fn main() -> int { return find(100) * 100 + find(3); }
        "#
        ),
        8 * 100 - 1
    );
}

#[test]
fn diagnostics_name_the_problem() {
    rejects("fn main() -> int { return x; }", "unknown variable x");
    rejects("fn main() -> int { return 1.5 + 1; }", "type mismatch");
    rejects("fn main() -> int { g[0] = 1; return 0; }", "unknown");
    rejects("fn main() -> int { return min(1, 2.0); }", "same type");
    rejects("fn main() -> int { if (2.5) { } return 0; }", "condition");
    rejects(
        "fn f() -> int { return 1; } fn f() -> int { return 2; } fn main() -> int { return 0; }",
        "duplicate function",
    );
    rejects(
        "global int g; global int g; fn main() -> int { return 0; }",
        "duplicate global",
    );
    rejects("fn main() -> int { return ucall(1, 2, 3); }", "ucall");
    rejects("fn main() -> float { return 1; }", "return type mismatch");
}

#[test]
fn global_scalar_init_values() {
    assert_eq!(
        eval(
            "global int k = 7; global float f = 1.5; fn main() -> int { return k + f2i(f * 2.0); }"
        ),
        10
    );
}

#[test]
fn chained_else_if_evaluates_in_order() {
    let src = r#"
        fn classify(x: int) -> int {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else if (x < 1000) { return 3; }
            else { return 4; }
        }
        fn main() -> int {
            return classify(5) * 1000 + classify(50) * 100 + classify(500) * 10 + classify(5000);
        }
    "#;
    assert_eq!(eval(src), 1234);
}

#[test]
fn verified_ir_comes_out_of_the_frontend() {
    let prog = compile(
        "global int xs[8]; fn main() -> int { let s = 0; for (let i = 0; i < 8; i = i + 1) { s = s + xs[i]; } return s; }",
    )
    .unwrap();
    metaopt_ir::verify::verify_program(&prog, metaopt_ir::verify::CfgForm::Canonical).unwrap();
    assert!(prog.func_by_name("main").is_some());
}

#[test]
fn break_exits_the_innermost_loop() {
    assert_eq!(
        eval(
            r#"
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 100; i = i + 1) {
                    if (i == 5) { break; }
                    s = s + i;
                }
                return s;
            }
        "#
        ),
        (0..5).sum::<i64>()
    );
    // Nested: break leaves only the inner loop.
    assert_eq!(
        eval(
            r#"
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 4; i = i + 1) {
                    for (let j = 0; j < 10; j = j + 1) {
                        if (j > i) { break; }
                        s = s + 1;
                    }
                }
                return s;
            }
        "#
        ),
        1 + 2 + 3 + 4
    );
}

#[test]
fn continue_runs_the_for_step() {
    assert_eq!(
        eval(
            r#"
            fn main() -> int {
                let s = 0;
                for (let i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        "#
        ),
        1 + 3 + 5 + 7 + 9
    );
}

#[test]
fn continue_in_while_rechecks_the_condition() {
    assert_eq!(
        eval(
            r#"
            fn main() -> int {
                let i = 0;
                let s = 0;
                while (i < 10) {
                    i = i + 1;
                    if (i % 3 == 0) { continue; }
                    s = s + i;
                }
                return s;
            }
        "#
        ),
        (1..=10).filter(|i| i % 3 != 0).sum::<i64>()
    );
}

#[test]
fn break_continue_outside_loops_rejected() {
    rejects("fn main() -> int { break; return 0; }", "break outside");
    rejects(
        "fn main() -> int { continue; return 0; }",
        "continue outside",
    );
}

#[test]
fn break_continue_compile_through_the_whole_pipeline() {
    let src = r#"
        global int xs[64];
        fn main() -> int {
            let s = 0;
            for (let i = 0; i < 64; i = i + 1) { xs[i] = i * 37 % 19; }
            for (let i = 0; i < 64; i = i + 1) {
                if (xs[i] == 0) { continue; }
                if (s > 500) { break; }
                s = s + xs[i];
            }
            return s;
        }
    "#;
    let prog = compile(src).unwrap();
    let want = run(&prog, &RunConfig::default()).unwrap().ret;
    let prepared = metaopt_compiler::prepare(&prog).unwrap();
    let profile = run(
        &prepared,
        &RunConfig {
            profile: true,
            ..Default::default()
        },
    )
    .unwrap()
    .profile
    .unwrap();
    let machine = metaopt_sim::MachineConfig::table3();
    let compiled = metaopt_compiler::compile(
        &prepared,
        &profile.funcs[0],
        &machine,
        &metaopt_compiler::Passes::baseline(),
    )
    .unwrap();
    let sim = metaopt_sim::simulate(&compiled.code, &machine, compiled.initial_memory(&prepared))
        .unwrap();
    assert_eq!(sim.ret, want);
}
