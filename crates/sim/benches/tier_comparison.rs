//! Reference-vs-bytecode tier throughput on representative suite kernels.
//!
//! The acceptance bar for the tiered backend is the bytecode tier at ≥2x
//! the reference tier's `sim_cycles_per_sec`; this bench measures both
//! tiers on three kernels spanning the suite (integer, bit-twiddling, and
//! EPIC-heavy control flow). CI compiles it (`cargo bench --no-run`) but
//! asserts no timings — numbers belong in `BENCH_evals.json`, gated by
//! `ci/bench_gate.py`.

use criterion::{criterion_group, criterion_main, Criterion};
use metaopt_compiler::{compile, prepare, Passes};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::{simulate_tier, MachineConfig, SimTier};
use metaopt_suite::{by_name, DataSet};

const KERNELS: [&str; 3] = ["rawcaudio", "rawdaudio", "unepic"];

fn bench_tiers(c: &mut Criterion) {
    let machine = MachineConfig::table3();
    for name in KERNELS {
        let b = by_name(name).expect("registered");
        let prog = b.program();
        let prepared = prepare(&prog).expect("inlines");
        let mem = b.memory(&prepared, DataSet::Train);
        let profile = run(
            &prepared,
            &RunConfig {
                memory: Some(mem.clone()),
                profile: true,
                ..Default::default()
            },
        )
        .expect("profiles")
        .profile
        .expect("requested");
        let compiled =
            compile(&prepared, &profile.funcs[0], &machine, &Passes::baseline()).expect("compiles");

        for tier in [SimTier::Reference, SimTier::Fast] {
            c.bench_function(&format!("sim/{name}/{tier}"), |bench| {
                bench.iter(|| {
                    let mut m = mem.clone();
                    m.resize(compiled.mem_size.max(m.len()), 0);
                    simulate_tier(&compiled.code, &machine, m, tier).expect("simulates")
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tiers
}
criterion_main!(benches);
