//! The fast execution tier: pre-decoded linear bytecode.
//!
//! [`BytecodeProgram::compile`] lowers a [`MachineProgram`] into a flat,
//! cache-friendly instruction stream in which everything the reference
//! interpreter recomputes per dynamic instruction is resolved once per
//! static instruction:
//!
//! * the three architectural register files are folded into one unified
//!   `i64` array (floats live as bit patterns, predicates as 0/1), so each
//!   operand is a single pre-resolved index — no per-class array selection,
//!   and destination value and ready-time writes share one index,
//! * functional-unit latencies are baked in (`latency_of` is never called
//!   at run time),
//! * the per-bundle issue-stall scan is pre-flattened into a sorted,
//!   deduplicated list of unified-file indices, pruned to the registers
//!   that can actually stall (multi-cycle results and loads), and
//! * branch-predictor sites are renumbered densely so the 2-bit counters
//!   live in a `Vec<u8>` instead of a `HashMap`.
//!
//! The observable semantics are the **equivalence contract** of DESIGN.md
//! §17: for any machine-verified program, [`simulate_fast`] returns a
//! [`SimResult`] bit-identical to [`crate::exec::simulate_reference`] —
//! same cycles, dynamic counts, branch/cache statistics, return value, and
//! final memory image — and fails with the same [`SimError`] on the same
//! inputs. The cross-tier differential proptest (`tests/tier_differential`)
//! enforces this over random programs, plans, and machines.
//!
//! Programs that would make the reference tier panic (register numbers
//! outside the machine's files, missing operands) panic here too, at the
//! same point of execution: compilation maps such operands to the `NONE`
//! / `OOB` sentinels, which index out of range at run time rather than
//! being rejected eagerly, so unreached malformed code stays unreached.

use crate::cache::Hierarchy;
use crate::code::MachineProgram;
use crate::exec::{SimError, SimResult};
use crate::machine::{latency_of, MachineConfig};
use metaopt_ir::interp::{f2i_sat, read_mem, unsafe_call_semantics, unsafe_call_slot, write_mem};
use metaopt_ir::{Opcode, RegClass, Width};

/// Sentinel for "operand/destination absent" in packed [`Op`] fields.
/// Reading an absent operand indexes out of range and panics, exactly where
/// the reference tier would panic indexing its argument vector; an absent
/// *destination* skips the write-back, as the reference does.
const NONE: u32 = u32::MAX;

/// Sentinel for "register present but outside the machine's file". Distinct
/// from [`NONE`] so that e.g. `Ret` with an out-of-range source still
/// panics (like the reference) instead of being treated as argument-less.
const OOB: u32 = u32::MAX - 1;

/// Fieldless dispatch kind: one variant per executable behavior of
/// [`Opcode`], with load/store widths moved into [`Op::width`].
#[derive(Clone, Copy, Debug)]
enum OpK {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    AddI,
    MulI,
    AndI,
    ShlI,
    ShrI,
    MovI,
    Mov,
    Neg,
    Abs,
    Min,
    Max,
    Sel,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpEqI,
    CmpLtI,
    CmpGtI,
    PAnd,
    POr,
    PNot,
    PMovI,
    PMov,
    P2I,
    I2P,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    FAbs,
    FNeg,
    FMin,
    FMax,
    FMovI,
    FMov,
    FSel,
    FCmpEq,
    FCmpLt,
    FCmpLe,
    I2F,
    F2I,
    FBits,
    BitsF,
    Ld,
    FLd,
    St,
    FSt,
    Prefetch,
    Br,
    CBr,
    Ret,
    Call,
    UnsafeCall,
}

/// One pre-decoded instruction: 32 bytes, `Copy`, no heap indirection.
///
/// All register references are indices into the unified file
/// (`[ints | floats | preds]`). Branches reuse the operand slots: `Br`
/// keeps its target in `a`; `CBr` keeps its guard-input in `a`, target in
/// `b`, and dense predictor site in `c`.
#[derive(Clone, Copy, Debug)]
struct Op {
    kind: OpK,
    /// Load/store access width ([`Width::B8`] for non-memory ops).
    width: Width,
    /// Result-ready latency (`latency_of`, baked in).
    lat: u8,
    /// Unified operand indices ([`NONE`] if absent, [`OOB`] if unmappable).
    a: u32,
    b: u32,
    c: u32,
    /// Unified destination index, [`NONE`] if the instruction has none.
    dst: u32,
    /// Guard predicate index, [`NONE`] if unguarded.
    pred: u32,
    /// Immediate; for `FMovI` this is the `f64` bit pattern.
    imm: i64,
}

/// Issue-group metadata: ranges into the flat `ops` and `deps` arrays.
#[derive(Clone, Copy, Debug)]
struct BundleMeta {
    ops: (u32, u32),
    deps: (u32, u32),
}

/// A [`MachineProgram`] compiled to linear bytecode for a specific
/// [`MachineConfig`] (the register-file sizes are baked into the unified
/// file indices).
#[derive(Clone, Debug)]
pub struct BytecodeProgram {
    ops: Vec<Op>,
    bundles: Vec<BundleMeta>,
    /// Sorted, deduplicated unified-file indices per bundle, pruned to
    /// registers that can stall (see `compile`).
    deps: Vec<u32>,
    /// Per-block `[start, end)` ranges into `bundles`.
    blocks: Vec<(u32, u32)>,
    entry: usize,
    /// Unified file size: `gpr + fpr + pred`.
    nregs: usize,
    /// Static `CBr` site count (dense predictor table size).
    nsites: usize,
}

/// Register class of the value an opcode writes back, mirroring the `Out`
/// arms of the reference executor (distinct from `Opcode::dst_class`, which
/// claims e.g. `Call` writes an integer).
fn out_class(op: Opcode) -> Option<RegClass> {
    use Opcode::*;
    Some(match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | AddI | MulI | AndI | ShlI
        | ShrI | MovI | Mov | Neg | Abs | Min | Max | Sel | P2I | F2I | FBits | Ld(_)
        | UnsafeCall => RegClass::Int,
        FAdd | FSub | FMul | FDiv | FSqrt | FAbs | FNeg | FMin | FMax | FMovI | FMov | FSel
        | I2F | BitsF | FLd => RegClass::Float,
        CmpEq | CmpNe | CmpLt | CmpLe | CmpEqI | CmpLtI | CmpGtI | PAnd | POr | PNot | PMovI
        | PMov | I2P | FCmpEq | FCmpLt | FCmpLe => RegClass::Pred,
        St(_) | FSt | Prefetch | Br | CBr | Ret | Call => return None,
    })
}

/// The register class each operand slot is *read* as, mirroring exactly
/// which file the reference executor's arms index (not `arg_classes`, which
/// drives only the stall scan).
fn read_classes(op: Opcode) -> [Option<RegClass>; 3] {
    use Opcode::*;
    use RegClass::{Float as F, Int as I, Pred as P};
    match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max | CmpEq | CmpNe
        | CmpLt | CmpLe | St(_) => [Some(I), Some(I), None],
        AddI | MulI | AndI | ShlI | ShrI | Mov | Neg | Abs | CmpEqI | CmpLtI | CmpGtI | I2P
        | I2F | BitsF | Ld(_) | FLd | Prefetch | Ret | UnsafeCall => [Some(I), None, None],
        Sel => [Some(P), Some(I), Some(I)],
        PAnd | POr => [Some(P), Some(P), None],
        PNot | PMov | P2I | CBr => [Some(P), None, None],
        FAdd | FSub | FMul | FDiv | FMin | FMax | FCmpEq | FCmpLt | FCmpLe => {
            [Some(F), Some(F), None]
        }
        FSqrt | FAbs | FNeg | FMov | F2I | FBits => [Some(F), None, None],
        FSel => [Some(P), Some(F), Some(F)],
        FSt => [Some(I), Some(F), None],
        MovI | PMovI | FMovI | Br | Call => [None, None, None],
    }
}

fn kind_of(op: Opcode) -> OpK {
    use Opcode as O;
    match op {
        O::Add => OpK::Add,
        O::Sub => OpK::Sub,
        O::Mul => OpK::Mul,
        O::Div => OpK::Div,
        O::Rem => OpK::Rem,
        O::And => OpK::And,
        O::Or => OpK::Or,
        O::Xor => OpK::Xor,
        O::Shl => OpK::Shl,
        O::Shr => OpK::Shr,
        O::AddI => OpK::AddI,
        O::MulI => OpK::MulI,
        O::AndI => OpK::AndI,
        O::ShlI => OpK::ShlI,
        O::ShrI => OpK::ShrI,
        O::MovI => OpK::MovI,
        O::Mov => OpK::Mov,
        O::Neg => OpK::Neg,
        O::Abs => OpK::Abs,
        O::Min => OpK::Min,
        O::Max => OpK::Max,
        O::Sel => OpK::Sel,
        O::CmpEq => OpK::CmpEq,
        O::CmpNe => OpK::CmpNe,
        O::CmpLt => OpK::CmpLt,
        O::CmpLe => OpK::CmpLe,
        O::CmpEqI => OpK::CmpEqI,
        O::CmpLtI => OpK::CmpLtI,
        O::CmpGtI => OpK::CmpGtI,
        O::PAnd => OpK::PAnd,
        O::POr => OpK::POr,
        O::PNot => OpK::PNot,
        O::PMovI => OpK::PMovI,
        O::PMov => OpK::PMov,
        O::P2I => OpK::P2I,
        O::I2P => OpK::I2P,
        O::FAdd => OpK::FAdd,
        O::FSub => OpK::FSub,
        O::FMul => OpK::FMul,
        O::FDiv => OpK::FDiv,
        O::FSqrt => OpK::FSqrt,
        O::FAbs => OpK::FAbs,
        O::FNeg => OpK::FNeg,
        O::FMin => OpK::FMin,
        O::FMax => OpK::FMax,
        O::FMovI => OpK::FMovI,
        O::FMov => OpK::FMov,
        O::FSel => OpK::FSel,
        O::FCmpEq => OpK::FCmpEq,
        O::FCmpLt => OpK::FCmpLt,
        O::FCmpLe => OpK::FCmpLe,
        O::I2F => OpK::I2F,
        O::F2I => OpK::F2I,
        O::FBits => OpK::FBits,
        O::BitsF => OpK::BitsF,
        O::Ld(_) => OpK::Ld,
        O::FLd => OpK::FLd,
        O::St(_) => OpK::St,
        O::FSt => OpK::FSt,
        O::Prefetch => OpK::Prefetch,
        O::Br => OpK::Br,
        O::CBr => OpK::CBr,
        O::Ret => OpK::Ret,
        O::Call => OpK::Call,
        O::UnsafeCall => OpK::UnsafeCall,
    }
}

/// Write a raw result into the unified file and stamp its ready time
/// (no-op when the instruction has no destination, mirroring the reference
/// write-back).
#[inline(always)]
fn st(file: &mut [i64], ready: &mut [u64], op: &Op, v: i64, at: u64) {
    if op.dst != NONE {
        file[op.dst as usize] = v;
        ready[op.dst as usize] = at;
    }
}

/// Write a float result (stored as its bit pattern).
#[inline(always)]
fn st_f(file: &mut [i64], ready: &mut [u64], op: &Op, v: f64, at: u64) {
    st(file, ready, op, v.to_bits() as i64, at);
}

/// Write a predicate result (stored as 0/1).
#[inline(always)]
fn st_p(file: &mut [i64], ready: &mut [u64], op: &Op, v: bool, at: u64) {
    st(file, ready, op, v as i64, at);
}

/// Read a unified-file slot as a float.
#[inline(always)]
fn ld_f(file: &[i64], ix: usize) -> f64 {
    f64::from_bits(file[ix] as u64)
}

impl BytecodeProgram {
    /// Pre-decode `mp` for execution on `cfg`. The same `cfg` must be
    /// passed to [`BytecodeProgram::run`]: register-file sizes are baked
    /// into the unified file layout.
    pub fn compile(mp: &MachineProgram, cfg: &MachineConfig) -> BytecodeProgram {
        let (gpr, fpr, pred) = (cfg.gpr, cfg.fpr, cfg.pred);
        // Unified-file index for a class-local register. Out-of-range
        // registers map to `OOB`, which indexes out of the run-time arrays
        // and reproduces the reference tier's panic at the same point of
        // execution.
        let uix = |class: RegClass, ix: usize| -> u32 {
            let (off, size) = match class {
                RegClass::Int => (0usize, gpr),
                RegClass::Float => (gpr, fpr),
                RegClass::Pred => (gpr + fpr, pred),
            };
            if ix >= size {
                OOB
            } else {
                (off + ix) as u32
            }
        };

        // Unified-file slots that can ever stall a later bundle. A bundle
        // issued at `issue_k` writes its results ready at `issue_k + lat`,
        // and the next bundle starts no earlier than `issue_k + 1` — so a
        // single-cycle result is always ready by the time anything can
        // read it. Only multi-cycle results (`lat > 1`) and loads (whose
        // ready time comes from the cache model) can lift `issue` above
        // `cycle`; deps on every other slot are dropped from the stall
        // scan. Sentinel entries are always kept — they are the
        // out-of-bounds panics the reference tier would hit.
        let mut may_stall = vec![false; gpr + fpr + pred];
        for bb in &mp.blocks {
            for bundle in bb {
                for inst in &bundle.insts {
                    if latency_of(inst.op) <= 1 && !matches!(inst.op, Opcode::Ld(_) | Opcode::FLd) {
                        continue;
                    }
                    if let (Some(c), Some(d)) = (out_class(inst.op), inst.dst) {
                        let r = uix(c, d.index());
                        if r < OOB {
                            may_stall[r as usize] = true;
                        }
                    }
                }
            }
        }

        let mut ops = Vec::with_capacity(mp.num_insts());
        let mut bundles = Vec::with_capacity(mp.num_bundles());
        let mut deps: Vec<u32> = Vec::new();
        let mut blocks = Vec::with_capacity(mp.blocks.len());
        let mut nsites: u32 = 0;

        for bb in &mp.blocks {
            let bstart = bundles.len() as u32;
            for bundle in bb {
                let ops_start = ops.len() as u32;
                let deps_start = deps.len() as u32;
                let mut bdeps: Vec<u32> = Vec::new();
                for inst in &bundle.insts {
                    // Issue-stall scan, mirrored from the reference tier:
                    // sources by class (all-int fallback), guards, and the
                    // overwritten destination.
                    if let Some(classes) = inst.op.arg_classes() {
                        for (a, c) in inst.args.iter().zip(classes) {
                            bdeps.push(uix(*c, a.index()));
                        }
                    } else {
                        for a in &inst.args {
                            bdeps.push(uix(RegClass::Int, a.index()));
                        }
                    }
                    if let Some(p) = inst.pred {
                        bdeps.push(uix(RegClass::Pred, p.index()));
                    }
                    if let (Some(c), Some(d)) = (inst.op.dst_class(), inst.dst) {
                        bdeps.push(uix(c, d.index()));
                    }

                    let rc = read_classes(inst.op);
                    let arg = |i: usize| match rc[i] {
                        Some(c) => inst.args.get(i).map_or(NONE, |v| uix(c, v.index())),
                        None => NONE,
                    };
                    let (mut a, b, mut c) = (arg(0), arg(1), arg(2));
                    let dst = match (out_class(inst.op), inst.dst) {
                        (Some(cl), Some(d)) => uix(cl, d.index()),
                        _ => NONE,
                    };
                    // Branches reuse the free operand slots (see [`Op`]).
                    let target = inst
                        .target
                        .map_or(NONE, |t| (t.index() as u32).min(OOB - 1));
                    match inst.op {
                        Opcode::Br => a = target,
                        Opcode::CBr => {
                            c = nsites;
                            nsites += 1;
                        }
                        _ => {}
                    }
                    let b = if inst.op == Opcode::CBr { target } else { b };
                    ops.push(Op {
                        kind: kind_of(inst.op),
                        width: match inst.op {
                            Opcode::Ld(w) | Opcode::St(w) => w,
                            _ => Width::B8,
                        },
                        lat: latency_of(inst.op) as u8,
                        a,
                        b,
                        c,
                        dst,
                        pred: inst.pred.map_or(NONE, |p| uix(RegClass::Pred, p.index())),
                        imm: if inst.op == Opcode::FMovI {
                            inst.fimm.to_bits() as i64
                        } else {
                            inst.imm
                        },
                    });
                }
                bdeps.sort_unstable();
                bdeps.dedup();
                bdeps.retain(|&d| d >= OOB || may_stall[d as usize]);
                deps.extend_from_slice(&bdeps);
                bundles.push(BundleMeta {
                    ops: (ops_start, ops.len() as u32),
                    deps: (deps_start, deps.len() as u32),
                });
            }
            blocks.push((bstart, bundles.len() as u32));
        }

        BytecodeProgram {
            ops,
            bundles,
            deps,
            blocks,
            entry: mp.entry,
            nregs: gpr + fpr + pred,
            nsites: nsites as usize,
        }
    }

    /// Execute the bytecode on machine `cfg` (the config passed to
    /// [`BytecodeProgram::compile`]) from the given memory image.
    ///
    /// # Errors
    /// Exactly the reference tier's failures: out-of-bounds memory
    /// accesses, malformed machine code (a block without a terminating
    /// branch), or an exceeded `cfg.max_insts` / `cfg.max_cycles` budget.
    pub fn run(&self, cfg: &MachineConfig, memory: Vec<u8>) -> Result<SimResult, SimError> {
        let mut mem = memory;
        // Unified register file: [ints | floats(bits) | preds(0/1)], with a
        // parallel ready-time array sharing the same indices.
        let mut file = vec![0i64; self.nregs];
        let mut ready = vec![0u64; self.nregs];
        let max_insts = cfg.max_insts;
        let max_cycles = cfg.max_cycles;
        let mispredict_penalty = cfg.mispredict_penalty;
        let prefetch_queue_cycles = cfg.prefetch_queue_cycles;
        let mut cache = Hierarchy::new(&cfg.cache);
        // Dense 2-bit predictor, weakly-not-taken like the reference.
        let mut counters = vec![1u8; self.nsites];
        let mut predictions: u64 = 0;
        let mut mispredicts: u64 = 0;

        let mut cycle: u64 = 0;
        let mut insts: u64 = 0;
        let mut nullified: u64 = 0;
        let mut bundles: u64 = 0;
        let mut pf_queue: u64 = 0;

        let mut cur_block = self.entry;
        let (mut bpc, mut bend) = self.blocks[cur_block];
        let ret_val: i64;

        'outer: loop {
            if bpc >= bend {
                return Err(SimError::FellOffBlock(cur_block));
            }
            let bm = self.bundles[bpc as usize];
            bundles += 1;

            let mut issue = cycle;
            for &d in &self.deps[bm.deps.0 as usize..bm.deps.1 as usize] {
                issue = issue.max(ready[d as usize]);
            }

            let mut next: Option<u32> = None;
            let mut penalty: u64 = 0;

            for op in &self.ops[bm.ops.0 as usize..bm.ops.1 as usize] {
                insts += 1;
                if insts > max_insts {
                    return Err(SimError::InstLimit(max_insts));
                }
                if op.pred != NONE && file[op.pred as usize] == 0 {
                    nullified += 1;
                    continue;
                }
                let a = op.a as usize;
                let b = op.b as usize;
                let c = op.c as usize;
                let at = issue + op.lat as u64;

                match op.kind {
                    OpK::Add => {
                        let v = file[a].wrapping_add(file[b]);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Sub => {
                        let v = file[a].wrapping_sub(file[b]);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Mul => {
                        let v = file[a].wrapping_mul(file[b]);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Div => {
                        let d = file[b];
                        let v = if d == 0 { 0 } else { file[a].wrapping_div(d) };
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Rem => {
                        let d = file[b];
                        let v = if d == 0 { 0 } else { file[a].wrapping_rem(d) };
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::And => {
                        let v = file[a] & file[b];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Or => {
                        let v = file[a] | file[b];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Xor => {
                        let v = file[a] ^ file[b];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Shl => {
                        let v = file[a].wrapping_shl(file[b] as u32 & 63);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Shr => {
                        let v = file[a].wrapping_shr(file[b] as u32 & 63);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::AddI => {
                        let v = file[a].wrapping_add(op.imm);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::MulI => {
                        let v = file[a].wrapping_mul(op.imm);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::AndI => {
                        let v = file[a] & op.imm;
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::ShlI => {
                        let v = file[a].wrapping_shl(op.imm as u32 & 63);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::ShrI => {
                        let v = file[a].wrapping_shr(op.imm as u32 & 63);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::MovI => st(&mut file, &mut ready, op, op.imm, at),
                    OpK::Mov => {
                        let v = file[a];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Neg => {
                        let v = file[a].wrapping_neg();
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Abs => {
                        let v = file[a].wrapping_abs();
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Min => {
                        let v = file[a].min(file[b]);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Max => {
                        let v = file[a].max(file[b]);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::Sel => {
                        let v = if file[a] != 0 { file[b] } else { file[c] };
                        st(&mut file, &mut ready, op, v, at);
                    }

                    OpK::CmpEq => {
                        let v = file[a] == file[b];
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpNe => {
                        let v = file[a] != file[b];
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpLt => {
                        let v = file[a] < file[b];
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpLe => {
                        let v = file[a] <= file[b];
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpEqI => {
                        let v = file[a] == op.imm;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpLtI => {
                        let v = file[a] < op.imm;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::CmpGtI => {
                        let v = file[a] > op.imm;
                        st_p(&mut file, &mut ready, op, v, at);
                    }

                    OpK::PAnd => {
                        let v = file[a] != 0 && file[b] != 0;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::POr => {
                        let v = file[a] != 0 || file[b] != 0;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::PNot => {
                        let v = file[a] == 0;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::PMovI => st_p(&mut file, &mut ready, op, op.imm != 0, at),
                    OpK::PMov => {
                        let v = file[a] != 0;
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::P2I => {
                        let v = i64::from(file[a] != 0);
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::I2P => {
                        let v = file[a] != 0;
                        st_p(&mut file, &mut ready, op, v, at);
                    }

                    OpK::FAdd => {
                        let v = ld_f(&file, a) + ld_f(&file, b);
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FSub => {
                        let v = ld_f(&file, a) - ld_f(&file, b);
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FMul => {
                        let v = ld_f(&file, a) * ld_f(&file, b);
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FDiv => {
                        let d = ld_f(&file, b);
                        let v = if d == 0.0 { 0.0 } else { ld_f(&file, a) / d };
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FSqrt => {
                        let v = ld_f(&file, a).abs().sqrt();
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FAbs => {
                        let v = ld_f(&file, a).abs();
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FNeg => {
                        let v = -ld_f(&file, a);
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FMin => {
                        let v = ld_f(&file, a).min(ld_f(&file, b));
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FMax => {
                        let v = ld_f(&file, a).max(ld_f(&file, b));
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FMovI => st(&mut file, &mut ready, op, op.imm, at),
                    OpK::FMov => {
                        let v = file[a];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FSel => {
                        let v = if file[a] != 0 { file[b] } else { file[c] };
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FCmpEq => {
                        let v = ld_f(&file, a) == ld_f(&file, b);
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FCmpLt => {
                        let v = ld_f(&file, a) < ld_f(&file, b);
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FCmpLe => {
                        let v = ld_f(&file, a) <= ld_f(&file, b);
                        st_p(&mut file, &mut ready, op, v, at);
                    }
                    OpK::I2F => {
                        let v = file[a] as f64;
                        st_f(&mut file, &mut ready, op, v, at);
                    }
                    OpK::F2I => {
                        let v = f2i_sat(ld_f(&file, a));
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FBits => {
                        let v = file[a];
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::BitsF => {
                        let v = file[a];
                        st(&mut file, &mut ready, op, v, at);
                    }

                    OpK::Ld => {
                        let addr = file[a].wrapping_add(op.imm);
                        let v = read_mem(&mem, addr, op.width)?;
                        let at = cache.access(addr, issue.max(pf_queue));
                        st(&mut file, &mut ready, op, v, at);
                    }
                    OpK::FLd => {
                        let addr = file[a].wrapping_add(op.imm);
                        let bits = read_mem(&mem, addr, Width::B8)?;
                        let at = cache.access(addr, issue.max(pf_queue));
                        st(&mut file, &mut ready, op, bits, at);
                    }
                    OpK::St => {
                        let addr = file[a].wrapping_add(op.imm);
                        write_mem(&mut mem, addr, op.width, file[b])?;
                        cache.access(addr, issue); // allocate; store buffer hides latency
                    }
                    OpK::FSt => {
                        let addr = file[a].wrapping_add(op.imm);
                        write_mem(&mut mem, addr, Width::B8, file[b])?;
                        cache.access(addr, issue);
                    }
                    OpK::Prefetch => {
                        let addr = file[a].wrapping_add(op.imm);
                        let start = issue.max(pf_queue);
                        cache.prefetch(addr, start);
                        pf_queue = start + prefetch_queue_cycles;
                    }

                    OpK::Br => next = (op.a != NONE).then_some(op.a),
                    OpK::CBr => {
                        let taken = file[a] != 0;
                        let ctr = &mut counters[c];
                        let predicted_taken = *ctr >= 2;
                        *ctr = if taken {
                            (*ctr + 1).min(3)
                        } else {
                            ctr.saturating_sub(1)
                        };
                        predictions += 1;
                        if predicted_taken != taken {
                            mispredicts += 1;
                            penalty = penalty.max(mispredict_penalty);
                        }
                        if taken {
                            next = (op.b != NONE).then_some(op.b);
                        }
                    }
                    OpK::Ret => {
                        ret_val = if op.a == NONE { 0 } else { file[a] };
                        cycle = issue + 1 + penalty;
                        break 'outer;
                    }
                    OpK::Call => unreachable!("calls are inlined before lowering"),
                    OpK::UnsafeCall => {
                        let slot = unsafe_call_slot(op.imm);
                        let old = read_mem(&mem, slot, Width::B8)?;
                        let (newv, r) = unsafe_call_semantics(old, file[a], op.imm);
                        write_mem(&mut mem, slot, Width::B8, newv)?;
                        st(&mut file, &mut ready, op, r, at);
                    }
                }
            }

            cycle = issue + 1 + penalty;
            if cycle > max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            match next {
                Some(t) => {
                    cur_block = t as usize;
                    let (s, e) = self.blocks[cur_block];
                    bpc = s;
                    bend = e;
                }
                None => bpc += 1,
            }
        }

        Ok(SimResult {
            ret: ret_val,
            cycles: cycle.max(1),
            insts,
            nullified,
            bundles,
            branches: predictions,
            mispredicts,
            cache: cache.stats,
            memory: mem,
        })
    }
}

/// Compile `mp` to bytecode and execute it: the fast tier's equivalent of
/// [`crate::exec::simulate_reference`], bit-identical by contract.
///
/// # Errors
/// Exactly the reference tier's failures (see [`BytecodeProgram::run`]).
pub fn simulate_fast(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    BytecodeProgram::compile(mp, cfg).run(cfg, memory)
}
