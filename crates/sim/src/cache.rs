//! Set-associative data-cache hierarchy with in-flight line fills.
//!
//! Two inclusive levels backed by a flat memory with fixed latency. Each
//! resident line records the cycle at which its fill completes, so a demand
//! access (or a prefetched line still in flight) pays only the *remaining*
//! fill time — the mechanism that makes software prefetching profitable when
//! timely and useless when late.

use crate::machine::CacheConfig;

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    /// Cycle at which the line's data is available.
    ready_at: u64,
    /// LRU timestamp.
    last_use: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    ready_at: 0,
    last_use: 0,
};

struct Level {
    sets: usize,
    /// `sets - 1` when `sets` is a power of two, else 0: index with a mask
    /// instead of an integer division on the (overwhelmingly common)
    /// power-of-two geometries.
    set_mask: usize,
    assoc: usize,
    lines: Vec<Line>, // sets * assoc
    latency: u64,
}

impl Level {
    fn new(bytes: usize, assoc: usize, line_bytes: usize, latency: u64) -> Self {
        let sets = (bytes / line_bytes / assoc).max(1);
        Level {
            sets,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            assoc,
            lines: vec![INVALID; sets * assoc],
            latency,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        if self.set_mask != 0 {
            line_addr as usize & self.set_mask
        } else {
            (line_addr as usize) % self.sets
        }
    }

    #[inline]
    fn set_lines(&mut self, line_addr: u64) -> &mut [Line] {
        let base = self.set_of(line_addr) * self.assoc;
        &mut self.lines[base..base + self.assoc]
    }

    #[inline]
    fn lookup(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        for l in self.set_lines(line_addr) {
            if l.valid && l.tag == line_addr {
                l.last_use = now;
                return Some(l.ready_at);
            }
        }
        None
    }

    /// Install a line that becomes ready at `ready_at`; evicts LRU.
    fn fill(&mut self, line_addr: u64, ready_at: u64, now: u64) {
        let set = self.set_lines(line_addr);
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (way, l) in set.iter().enumerate() {
            if !l.valid {
                victim = way;
                break;
            }
            if l.last_use < oldest {
                oldest = l.last_use;
                victim = way;
            }
        }
        set[victim] = Line {
            tag: line_addr,
            valid: true,
            ready_at,
            last_use: now,
        };
    }
}

/// Statistics collected by the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads and stores).
    pub accesses: u64,
    /// Demand accesses that missed L1.
    pub l1_misses: u64,
    /// Demand accesses that also missed L2.
    pub l2_misses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Demand accesses that hit a line still in flight (late but partially
    /// useful prefetch or an earlier miss to the same line).
    pub inflight_hits: u64,
}

/// The two-level hierarchy.
pub struct Hierarchy {
    l1: Level,
    l2: Level,
    line_bytes: usize,
    /// `log2(line_bytes)` when it is a power of two, else 0: the line-number
    /// computation is on the critical path of every access, and a shift
    /// beats an integer division there.
    line_shift: u32,
    miss_latency: u64,
    /// Running statistics.
    pub stats: CacheStats,
}

impl Hierarchy {
    /// Build the hierarchy from a configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        Hierarchy {
            l1: Level::new(cfg.l1_bytes, cfg.l1_assoc, cfg.line_bytes, cfg.l1_latency),
            l2: Level::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line_bytes, cfg.l2_latency),
            line_bytes: cfg.line_bytes,
            line_shift: if cfg.line_bytes.is_power_of_two() {
                cfg.line_bytes.trailing_zeros()
            } else {
                0
            },
            miss_latency: cfg.miss_latency,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn line_addr(&self, addr: i64) -> u64 {
        if self.line_shift != 0 {
            (addr as u64) >> self.line_shift
        } else {
            (addr as u64) / self.line_bytes as u64
        }
    }

    /// A demand access (load or store) at `addr` on cycle `now`; returns the
    /// cycle at which the data is available.
    pub fn access(&mut self, addr: i64, now: u64) -> u64 {
        let la = self.line_addr(addr);
        self.stats.accesses += 1;
        if let Some(ready) = self.l1.lookup(la, now) {
            let avail = now.max(ready) + self.l1.latency;
            if ready > now {
                self.stats.inflight_hits += 1;
            }
            return avail;
        }
        self.stats.l1_misses += 1;
        if let Some(ready) = self.l2.lookup(la, now) {
            let avail = now.max(ready) + self.l2.latency;
            if ready > now {
                self.stats.inflight_hits += 1;
            }
            // Promote into L1; ready once L2 delivered.
            self.l1.fill(la, avail, now);
            return avail;
        }
        self.stats.l2_misses += 1;
        let avail = now + self.miss_latency;
        self.l2.fill(la, avail, now);
        self.l1.fill(la, avail, now);
        avail
    }

    /// A non-binding prefetch of the line containing `addr` on cycle `now`.
    /// Fills both levels without stalling; already-resident lines are
    /// untouched apart from LRU state.
    pub fn prefetch(&mut self, addr: i64, now: u64) {
        let la = self.line_addr(addr);
        self.stats.prefetches += 1;
        if self.l1.lookup(la, now).is_some() {
            return;
        }
        if let Some(ready) = self.l2.lookup(la, now) {
            self.l1.fill(la, now.max(ready) + self.l2.latency, now);
            return;
        }
        let avail = now + self.miss_latency;
        self.l2.fill(la, avail, now);
        self.l1.fill(la, avail, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(&CacheConfig {
            line_bytes: 32,
            l1_bytes: 128, // 4 lines, 2-way => 2 sets
            l1_assoc: 2,
            l1_latency: 2,
            l2_bytes: 512,
            l2_assoc: 4,
            l2_latency: 7,
            miss_latency: 35,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut h = small();
        let t1 = h.access(0, 100);
        assert_eq!(t1, 135); // cold miss
        let t2 = h.access(8, 200); // same line, L1 hit
        assert_eq!(t2, 202);
        assert_eq!(h.stats.accesses, 2);
        assert_eq!(h.stats.l1_misses, 1);
        assert_eq!(h.stats.l2_misses, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = small();
        // Fill set 0 of L1 (lines 0 and 2 map to set 0 with 2 sets).
        h.access(0, 0); // line 0
        h.access(64, 1000); // line 2, same set
        h.access(128, 2000); // line 4, same set -> evicts line 0 from L1
        let t = h.access(0, 3000); // L1 miss, L2 hit
        assert_eq!(t, 3007);
    }

    #[test]
    fn timely_prefetch_hides_latency() {
        let mut h = small();
        h.prefetch(0, 0); // line ready at 35
        let t = h.access(0, 100);
        assert_eq!(t, 102, "prefetched line is an L1 hit");
        assert_eq!(h.stats.prefetches, 1);
        assert_eq!(h.stats.l1_misses, 0);
    }

    #[test]
    fn late_prefetch_partially_hides_latency() {
        let mut h = small();
        h.prefetch(0, 0); // ready at 35
        let t = h.access(0, 10); // still in flight
        assert_eq!(t, 35 + 2);
        assert_eq!(h.stats.inflight_hits, 1);
    }

    #[test]
    fn prefetch_pollution_evicts_useful_line() {
        let mut h = small();
        h.access(0, 0); // line 0 resident in L1 set 0
        h.prefetch(64, 10); // set 0
        h.prefetch(128, 11); // set 0 -> line 0 evicted from L1
        let t = h.access(0, 1000);
        assert_eq!(t, 1007, "falls back to L2 after pollution");
    }

    #[test]
    fn redundant_prefetch_is_harmless() {
        let mut h = small();
        h.access(0, 0);
        h.prefetch(0, 1);
        h.prefetch(0, 2);
        let t = h.access(0, 50);
        assert_eq!(t, 52);
    }
}
