//! Scheduled, register-allocated machine code.
//!
//! A [`MachineProgram`] is the compiler's output: one fully-inlined function
//! whose blocks are sequences of [`Bundle`]s (VLIW issue groups). Register
//! operands reuse the IR's [`Inst`] structure but are *physical* register
//! indices into the class-specific files of a [`MachineConfig`].

use crate::machine::{unit_of, MachineConfig, UnitKind};
use metaopt_ir::{Inst, Opcode};

/// One VLIW issue group: instructions the scheduler placed in the same cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bundle {
    /// Slots, executed with sequential semantics (the scheduler only bundles
    /// independent instructions, so this matches EQ-model hardware).
    pub insts: Vec<Inst>,
}

/// A scheduled machine program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineProgram {
    /// Blocks of bundles; `Inst::target` indexes this vector.
    pub blocks: Vec<Vec<Bundle>>,
    /// Entry block index.
    pub entry: usize,
}

impl MachineProgram {
    /// Total instructions (static).
    pub fn num_insts(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.iter())
            .map(|bu| bu.insts.len())
            .sum()
    }

    /// Total bundles (static schedule length).
    pub fn num_bundles(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }
}

/// Check that `mp` is executable on `cfg`: per-bundle functional-unit usage
/// within limits, physical register indices within the files, control
/// transfers only in the last slot of a bundle, each block terminated by an
/// unconditional `Br`/`Ret`, targets in range, and no residual `Call`s.
///
/// # Errors
/// Returns a description of the first violation.
pub fn verify_machine(mp: &MachineProgram, cfg: &MachineConfig) -> Result<(), String> {
    if mp.entry >= mp.blocks.len() {
        return Err("entry block out of range".into());
    }
    for (bi, block) in mp.blocks.iter().enumerate() {
        let Some(last_bundle) = block.last() else {
            return Err(format!("block {bi} is empty"));
        };
        match last_bundle.insts.last().map(|i| i.op) {
            Some(Opcode::Br | Opcode::Ret) => {}
            other => {
                return Err(format!(
                    "block {bi} must end with br/ret, ends with {other:?}"
                ))
            }
        }
        for (ki, bundle) in block.iter().enumerate() {
            let mut used = [0usize; 4];
            for (si, inst) in bundle.insts.iter().enumerate() {
                if inst.op == Opcode::Call {
                    return Err(format!("block {bi} bundle {ki}: residual call"));
                }
                let u = unit_of(inst.op);
                used[match u {
                    UnitKind::Int => 0,
                    UnitKind::Float => 1,
                    UnitKind::Mem => 2,
                    UnitKind::Branch => 3,
                }] += 1;
                if inst.op.is_control() && si + 1 != bundle.insts.len() {
                    return Err(format!(
                        "block {bi} bundle {ki}: control instruction not in last slot"
                    ));
                }
                if let Some(t) = inst.target {
                    if t.index() >= mp.blocks.len() {
                        return Err(format!("block {bi} bundle {ki}: target {t} out of range"));
                    }
                }
                // Register ranges.
                if let Some(classes) = inst.op.arg_classes() {
                    for (a, c) in inst.args.iter().zip(classes) {
                        if a.index() >= cfg.file_size(*c) {
                            return Err(format!(
                                "block {bi} bundle {ki}: {c} register {a} out of file"
                            ));
                        }
                    }
                } else if inst.op == Opcode::Ret {
                    for a in &inst.args {
                        if a.index() >= cfg.gpr {
                            return Err(format!("block {bi}: ret register {a} out of file"));
                        }
                    }
                }
                if let (Some(c), Some(d)) = (inst.op.dst_class(), inst.dst) {
                    if d.index() >= cfg.file_size(c) {
                        return Err(format!(
                            "block {bi} bundle {ki}: {c} destination {d} out of file"
                        ));
                    }
                }
                if let Some(p) = inst.pred {
                    if p.index() >= cfg.pred {
                        return Err(format!("block {bi} bundle {ki}: guard {p} out of file"));
                    }
                }
            }
            if used[0] > cfg.int_units
                || used[1] > cfg.fp_units
                || used[2] > cfg.mem_units
                || used[3] > cfg.branch_units
            {
                return Err(format!(
                    "block {bi} bundle {ki}: unit over-subscription {used:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::VReg;

    fn ret_bundle() -> Bundle {
        Bundle {
            insts: vec![Inst::new(Opcode::Ret)],
        }
    }

    fn one_block(bundles: Vec<Bundle>) -> MachineProgram {
        MachineProgram {
            blocks: vec![bundles],
            entry: 0,
        }
    }

    #[test]
    fn accepts_minimal_program() {
        let mp = one_block(vec![ret_bundle()]);
        assert!(verify_machine(&mp, &MachineConfig::table3()).is_ok());
    }

    #[test]
    fn rejects_unit_oversubscription() {
        let mut b = Bundle::default();
        for _ in 0..5 {
            // 5 int ops > 4 int units
            b.insts.push(
                Inst::new(Opcode::Add)
                    .dst(VReg(0))
                    .args(&[VReg(1), VReg(2)]),
            );
        }
        let mp = one_block(vec![b, ret_bundle()]);
        let e = verify_machine(&mp, &MachineConfig::table3()).unwrap_err();
        assert!(e.contains("over-subscription"), "{e}");
    }

    #[test]
    fn rejects_register_out_of_file() {
        let b = Bundle {
            insts: vec![Inst::new(Opcode::Add)
                .dst(VReg(64))
                .args(&[VReg(0), VReg(1)])],
        };
        let mp = one_block(vec![b, ret_bundle()]);
        let e = verify_machine(&mp, &MachineConfig::table3()).unwrap_err();
        assert!(e.contains("destination"), "{e}");
    }

    #[test]
    fn rejects_control_mid_bundle() {
        let b = Bundle {
            insts: vec![
                Inst::new(Opcode::Br).target(metaopt_ir::BlockId(0)),
                Inst::new(Opcode::MovI).dst(VReg(0)).imm(1),
            ],
        };
        let mp = one_block(vec![b, ret_bundle()]);
        let e = verify_machine(&mp, &MachineConfig::table3()).unwrap_err();
        assert!(e.contains("not in last slot"), "{e}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let b = Bundle {
            insts: vec![Inst::new(Opcode::MovI).dst(VReg(0)).imm(1)],
        };
        let mp = one_block(vec![b]);
        assert!(verify_machine(&mp, &MachineConfig::table3()).is_err());
    }

    #[test]
    fn counts_insts_and_bundles() {
        let mp = one_block(vec![
            Bundle {
                insts: vec![Inst::new(Opcode::MovI).dst(VReg(0)).imm(1)],
            },
            ret_bundle(),
        ]);
        assert_eq!(mp.num_insts(), 2);
        assert_eq!(mp.num_bundles(), 2);
    }
}
