//! The cycle-level executor.
//!
//! In-order EPIC issue model: a bundle issues once every source register it
//! reads (including guard predicates) and every destination it overwrites is
//! ready; instruction results become ready after their functional-unit
//! latency, loads after the cache hierarchy delivers the line, and a
//! mispredicted branch charges the pipeline-flush penalty. The executor is
//! also a functional interpreter of the machine code, returning the final
//! memory image and return value for differential testing.

use crate::cache::{CacheStats, Hierarchy};
use crate::code::MachineProgram;
use crate::machine::{latency_of, MachineConfig};
use crate::predictor::TwoBitPredictor;
use metaopt_ir::interp::{
    f2i_sat, read_mem, unsafe_call_semantics, unsafe_call_slot, write_mem, InterpError,
};
use metaopt_ir::{Opcode, RegClass, Width};
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Out-of-bounds memory access.
    OutOfBounds {
        /// Faulting byte address.
        addr: i64,
    },
    /// Dynamic instruction limit exceeded.
    InstLimit(u64),
    /// Simulated-cycle limit exceeded: the cooperative deadline fired.
    CycleLimit(u64),
    /// The program fell off the end of a block (malformed machine code).
    FellOffBlock(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { addr } => write!(f, "memory access out of bounds at {addr}"),
            SimError::InstLimit(n) => write!(f, "instruction limit of {n} exceeded"),
            SimError::CycleLimit(n) => write!(f, "cycle limit of {n} exceeded"),
            SimError::FellOffBlock(b) => write!(f, "fell off end of block {b}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Which execution backend runs a simulation.
///
/// Both tiers implement the same observable semantics — bit-identical cycle
/// counts, memory traffic, statistics, and outputs (the equivalence
/// contract of DESIGN.md §17, enforced by the cross-tier differential test
/// harness). The tier therefore never enters fitness, caches, or checkpoint
/// fingerprints: results produced under one tier are valid under the other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SimTier {
    /// Pre-decoded linear bytecode (the default): same results, several
    /// times the throughput of [`SimTier::Reference`].
    #[default]
    Fast,
    /// The original cycle-level interpreter, kept as the semantic
    /// reference the fast tier is differentially tested against.
    Reference,
}

impl SimTier {
    /// Canonical lowercase name, as accepted by `--sim-tier` and emitted in
    /// the `tier` attribute of `sim` trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            SimTier::Fast => "fast",
            SimTier::Reference => "reference",
        }
    }
}

impl fmt::Display for SimTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SimTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fast" | "bytecode" => Ok(SimTier::Fast),
            "reference" | "ref" => Ok(SimTier::Reference),
            other => Err(format!(
                "unknown sim tier `{other}` (expected `fast` or `reference`)"
            )),
        }
    }
}

impl From<InterpError> for SimError {
    fn from(e: InterpError) -> Self {
        match e {
            InterpError::OutOfBounds { addr } => SimError::OutOfBounds { addr },
            other => unreachable!("interpreter error {other} cannot occur in simulation"),
        }
    }
}

/// Result of a simulation.
///
/// Equality is total over every observable — cycles, dynamic counts,
/// branch/cache statistics, return value, and the final memory image —
/// which is exactly the cross-tier equivalence contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Value returned by the program.
    pub ret: i64,
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions issued (including nullified predicated ones).
    pub insts: u64,
    /// Nullified (guard-false) instructions among `insts`.
    pub nullified: u64,
    /// Bundles issued.
    pub bundles: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Final memory image.
    pub memory: Vec<u8>,
}

impl SimResult {
    /// Instructions per cycle actually achieved.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.insts - self.nullified) as f64 / self.cycles as f64
        }
    }
}

struct RegFiles {
    ints: Vec<i64>,
    floats: Vec<f64>,
    preds: Vec<bool>,
    ready_i: Vec<u64>,
    ready_f: Vec<u64>,
    ready_p: Vec<u64>,
}

impl RegFiles {
    fn new(cfg: &MachineConfig) -> Self {
        RegFiles {
            ints: vec![0; cfg.gpr],
            floats: vec![0.0; cfg.fpr],
            preds: vec![false; cfg.pred],
            ready_i: vec![0; cfg.gpr],
            ready_f: vec![0; cfg.fpr],
            ready_p: vec![0; cfg.pred],
        }
    }

    fn ready_of(&self, class: RegClass, ix: usize) -> u64 {
        match class {
            RegClass::Int => self.ready_i[ix],
            RegClass::Float => self.ready_f[ix],
            RegClass::Pred => self.ready_p[ix],
        }
    }
}

/// Execute `mp` on machine `cfg` starting from the given memory image,
/// using the default tier ([`SimTier::Fast`]).
///
/// # Errors
/// Fails on out-of-bounds memory accesses, malformed machine code (a block
/// without a terminating branch), or when `cfg.max_insts` or
/// `cfg.max_cycles` is exceeded.
pub fn simulate(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    simulate_tier(mp, cfg, memory, SimTier::default())
}

/// Execute `mp` on machine `cfg` under an explicit execution [`SimTier`].
///
/// # Errors
/// As [`simulate`]; both tiers fail identically by contract.
pub fn simulate_tier(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
    tier: SimTier,
) -> Result<SimResult, SimError> {
    match tier {
        SimTier::Fast => crate::bytecode::simulate_fast(mp, cfg, memory),
        SimTier::Reference => simulate_reference(mp, cfg, memory),
    }
}

/// The reference cycle-level interpreter (the semantic ground truth the
/// bytecode tier is differentially tested against).
///
/// # Errors
/// As [`simulate`].
pub fn simulate_reference(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    let mut mem = memory;
    let mut regs = RegFiles::new(cfg);
    let mut cache = Hierarchy::new(&cfg.cache);
    let mut predictor = TwoBitPredictor::new();

    let mut cycle: u64 = 0;
    let mut insts: u64 = 0;
    let mut nullified: u64 = 0;
    let mut bundles: u64 = 0;
    // Memory-queue drain time: software prefetches occupy the memory
    // pipeline; demand loads issued while the queue is busy start late.
    let mut pf_queue: u64 = 0;

    let mut block = mp.entry;
    let mut bix = 0usize;
    let ret_val: i64;

    'outer: loop {
        let bb = &mp.blocks[block];
        if bix >= bb.len() {
            return Err(SimError::FellOffBlock(block));
        }
        let bundle = &bb[bix];
        bundles += 1;

        // Issue stall: wait for every register the bundle reads or
        // overwrites (guards included) to be ready.
        let mut issue = cycle;
        for inst in &bundle.insts {
            if let Some(classes) = inst.op.arg_classes() {
                for (a, c) in inst.args.iter().zip(classes) {
                    issue = issue.max(regs.ready_of(*c, a.index()));
                }
            } else {
                for a in &inst.args {
                    issue = issue.max(regs.ready_i[a.index()]);
                }
            }
            if let Some(p) = inst.pred {
                issue = issue.max(regs.ready_p[p.index()]);
            }
            if let (Some(c), Some(d)) = (inst.op.dst_class(), inst.dst) {
                issue = issue.max(regs.ready_of(c, d.index()));
            }
        }

        let mut next: Option<usize> = None; // taken-branch target block
        let mut penalty: u64 = 0;
        let mut branches = 0u64;

        for (si, inst) in bundle.insts.iter().enumerate() {
            insts += 1;
            if insts > cfg.max_insts {
                return Err(SimError::InstLimit(cfg.max_insts));
            }
            if let Some(p) = inst.pred {
                if !regs.preds[p.index()] {
                    nullified += 1;
                    continue;
                }
            }
            let ia = |i: usize| regs.ints[inst.args[i].index()];
            let fa = |i: usize| regs.floats[inst.args[i].index()];
            let pa = |i: usize| regs.preds[inst.args[i].index()];
            let lat = latency_of(inst.op);

            enum Out {
                I(i64),
                F(f64),
                P(bool),
                None,
            }
            let mut out = Out::None;
            let mut ready = issue + lat;

            match inst.op {
                Opcode::Add => out = Out::I(ia(0).wrapping_add(ia(1))),
                Opcode::Sub => out = Out::I(ia(0).wrapping_sub(ia(1))),
                Opcode::Mul => out = Out::I(ia(0).wrapping_mul(ia(1))),
                Opcode::Div => {
                    let b = ia(1);
                    out = Out::I(if b == 0 { 0 } else { ia(0).wrapping_div(b) });
                }
                Opcode::Rem => {
                    let b = ia(1);
                    out = Out::I(if b == 0 { 0 } else { ia(0).wrapping_rem(b) });
                }
                Opcode::And => out = Out::I(ia(0) & ia(1)),
                Opcode::Or => out = Out::I(ia(0) | ia(1)),
                Opcode::Xor => out = Out::I(ia(0) ^ ia(1)),
                Opcode::Shl => out = Out::I(ia(0).wrapping_shl(ia(1) as u32 & 63)),
                Opcode::Shr => out = Out::I(ia(0).wrapping_shr(ia(1) as u32 & 63)),
                Opcode::AddI => out = Out::I(ia(0).wrapping_add(inst.imm)),
                Opcode::MulI => out = Out::I(ia(0).wrapping_mul(inst.imm)),
                Opcode::AndI => out = Out::I(ia(0) & inst.imm),
                Opcode::ShlI => out = Out::I(ia(0).wrapping_shl(inst.imm as u32 & 63)),
                Opcode::ShrI => out = Out::I(ia(0).wrapping_shr(inst.imm as u32 & 63)),
                Opcode::MovI => out = Out::I(inst.imm),
                Opcode::Mov => out = Out::I(ia(0)),
                Opcode::Neg => out = Out::I(ia(0).wrapping_neg()),
                Opcode::Abs => out = Out::I(ia(0).wrapping_abs()),
                Opcode::Min => out = Out::I(ia(0).min(ia(1))),
                Opcode::Max => out = Out::I(ia(0).max(ia(1))),
                Opcode::Sel => out = Out::I(if pa(0) { ia(1) } else { ia(2) }),

                Opcode::CmpEq => out = Out::P(ia(0) == ia(1)),
                Opcode::CmpNe => out = Out::P(ia(0) != ia(1)),
                Opcode::CmpLt => out = Out::P(ia(0) < ia(1)),
                Opcode::CmpLe => out = Out::P(ia(0) <= ia(1)),
                Opcode::CmpEqI => out = Out::P(ia(0) == inst.imm),
                Opcode::CmpLtI => out = Out::P(ia(0) < inst.imm),
                Opcode::CmpGtI => out = Out::P(ia(0) > inst.imm),

                Opcode::PAnd => out = Out::P(pa(0) && pa(1)),
                Opcode::POr => out = Out::P(pa(0) || pa(1)),
                Opcode::PNot => out = Out::P(!pa(0)),
                Opcode::PMovI => out = Out::P(inst.imm != 0),
                Opcode::PMov => out = Out::P(pa(0)),
                Opcode::P2I => out = Out::I(if pa(0) { 1 } else { 0 }),
                Opcode::I2P => out = Out::P(ia(0) != 0),

                Opcode::FAdd => out = Out::F(fa(0) + fa(1)),
                Opcode::FSub => out = Out::F(fa(0) - fa(1)),
                Opcode::FMul => out = Out::F(fa(0) * fa(1)),
                Opcode::FDiv => {
                    let b = fa(1);
                    out = Out::F(if b == 0.0 { 0.0 } else { fa(0) / b });
                }
                Opcode::FSqrt => out = Out::F(fa(0).abs().sqrt()),
                Opcode::FAbs => out = Out::F(fa(0).abs()),
                Opcode::FNeg => out = Out::F(-fa(0)),
                Opcode::FMin => out = Out::F(fa(0).min(fa(1))),
                Opcode::FMax => out = Out::F(fa(0).max(fa(1))),
                Opcode::FMovI => out = Out::F(inst.fimm),
                Opcode::FMov => out = Out::F(fa(0)),
                Opcode::FSel => out = Out::F(if pa(0) { fa(1) } else { fa(2) }),
                Opcode::FCmpEq => out = Out::P(fa(0) == fa(1)),
                Opcode::FCmpLt => out = Out::P(fa(0) < fa(1)),
                Opcode::FCmpLe => out = Out::P(fa(0) <= fa(1)),
                Opcode::I2F => out = Out::F(ia(0) as f64),
                Opcode::F2I => out = Out::I(f2i_sat(fa(0))),
                Opcode::FBits => out = Out::I(fa(0).to_bits() as i64),
                Opcode::BitsF => out = Out::F(f64::from_bits(ia(0) as u64)),

                Opcode::Ld(w) => {
                    let addr = ia(0).wrapping_add(inst.imm);
                    let v = read_mem(&mem, addr, w)?;
                    ready = cache.access(addr, issue.max(pf_queue));
                    out = Out::I(v);
                }
                Opcode::FLd => {
                    let addr = ia(0).wrapping_add(inst.imm);
                    let bits = read_mem(&mem, addr, Width::B8)?;
                    ready = cache.access(addr, issue.max(pf_queue));
                    out = Out::F(f64::from_bits(bits as u64));
                }
                Opcode::St(w) => {
                    let addr = ia(0).wrapping_add(inst.imm);
                    write_mem(&mut mem, addr, w, ia(1))?;
                    cache.access(addr, issue); // allocate; store buffer hides latency
                }
                Opcode::FSt => {
                    let addr = ia(0).wrapping_add(inst.imm);
                    write_mem(&mut mem, addr, Width::B8, fa(1).to_bits() as i64)?;
                    cache.access(addr, issue);
                }
                Opcode::Prefetch => {
                    let addr = ia(0).wrapping_add(inst.imm);
                    let start = issue.max(pf_queue);
                    cache.prefetch(addr, start);
                    pf_queue = start + cfg.prefetch_queue_cycles;
                }

                Opcode::Br => next = inst.target.map(|t| t.index()),
                Opcode::CBr => {
                    branches += 1;
                    let taken = pa(0);
                    let site = ((block as u64) << 32) | ((bix as u64) << 8) | si as u64;
                    let correct = predictor.predict_and_update(site, taken);
                    if !correct {
                        penalty = penalty.max(cfg.mispredict_penalty);
                    }
                    if taken {
                        next = inst.target.map(|t| t.index());
                    }
                }
                Opcode::Ret => {
                    ret_val = if inst.args.is_empty() { 0 } else { ia(0) };
                    let _ = branches;
                    cycle = issue + 1 + penalty;
                    break 'outer;
                }
                Opcode::Call => unreachable!("calls are inlined before lowering"),
                Opcode::UnsafeCall => {
                    let slot = unsafe_call_slot(inst.imm);
                    let old = read_mem(&mem, slot, Width::B8)?;
                    let (newv, r) = unsafe_call_semantics(old, ia(0), inst.imm);
                    write_mem(&mut mem, slot, Width::B8, newv)?;
                    out = Out::I(r);
                }
            }

            if let Some(d) = inst.dst {
                match out {
                    Out::I(v) => {
                        regs.ints[d.index()] = v;
                        regs.ready_i[d.index()] = ready;
                    }
                    Out::F(v) => {
                        regs.floats[d.index()] = v;
                        regs.ready_f[d.index()] = ready;
                    }
                    Out::P(v) => {
                        regs.preds[d.index()] = v;
                        regs.ready_p[d.index()] = ready;
                    }
                    Out::None => {}
                }
            }
        }

        cycle = issue + 1 + penalty;
        // Cooperative deadline: bail out deterministically once the cycle
        // counter passes the budget, instead of leaving hang detection to a
        // wall clock. Checked per bundle, so a stalled schedule that stays
        // under `max_insts` still terminates.
        if cycle > cfg.max_cycles {
            return Err(SimError::CycleLimit(cfg.max_cycles));
        }
        match next {
            Some(t) => {
                block = t;
                bix = 0;
            }
            None => bix += 1,
        }
    }

    Ok(SimResult {
        ret: ret_val,
        cycles: cycle.max(1),
        insts,
        nullified,
        bundles,
        branches: predictor.predictions,
        mispredicts: predictor.mispredicts,
        cache: cache.stats,
        memory: mem,
    })
}

/// Run [`simulate`] and apply multiplicative measurement noise to the cycle
/// count: `cycles * (1 + amplitude * u)` with `u` drawn uniformly from
/// `[-1, 1)` by a deterministic xorshift of `seed`. Models the paper §7's
/// real-machine timing jitter.
pub fn simulate_noisy(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
    amplitude: f64,
    seed: u64,
) -> Result<SimResult, SimError> {
    simulate_noisy_tier(mp, cfg, memory, amplitude, seed, SimTier::default())
}

/// [`simulate_noisy`] under an explicit execution [`SimTier`]. The noise is
/// applied to the simulated cycle count after the run, so it is identical
/// across tiers by construction.
pub fn simulate_noisy_tier(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
    amplitude: f64,
    seed: u64,
    tier: SimTier,
) -> Result<SimResult, SimError> {
    let mut r = simulate_tier(mp, cfg, memory, tier)?;
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    let factor = 1.0 + amplitude * (2.0 * u - 1.0);
    r.cycles = ((r.cycles as f64) * factor).round().max(1.0) as u64;
    Ok(r)
}

/// Run [`simulate_tier`] (or [`simulate_noisy_tier`] when `noise` is set)
/// and emit one `sim` trace event per completed simulation: simulated
/// `cycles` and `insts`, the host-side wall time as `dur_ns`, and the
/// executing `tier`. Failed simulations emit nothing — the caller's
/// evaluation layer records the failure in its own taxonomy.
pub fn simulate_traced(
    mp: &MachineProgram,
    cfg: &MachineConfig,
    memory: Vec<u8>,
    noise: Option<(f64, u64)>,
    tier: SimTier,
    tracer: &metaopt_trace::Tracer,
) -> Result<SimResult, SimError> {
    let span = tracer.begin();
    let result = match noise {
        Some((amplitude, seed)) => simulate_noisy_tier(mp, cfg, memory, amplitude, seed, tier),
        None => simulate_tier(mp, cfg, memory, tier),
    };
    if let Ok(r) = &result {
        if let Some(m) = tracer.metrics() {
            m.counter("metaopt_sim_total").inc();
            m.counter("metaopt_sim_cycles_total").add(r.cycles);
            m.counter("metaopt_sim_wall_ns_total").add(span.dur_ns());
        }
        if tracer.enabled() {
            use metaopt_trace::json::Value;
            tracer.emit(
                "sim",
                [
                    ("cycles", Value::UInt(r.cycles)),
                    ("insts", Value::UInt(r.insts)),
                    ("dur_ns", Value::UInt(span.dur_ns())),
                    ("tier", Value::Str(tier.as_str().to_string())),
                ],
            );
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Bundle;
    use metaopt_ir::{BlockId, Inst, VReg};

    fn bundle(insts: Vec<Inst>) -> Bundle {
        Bundle { insts }
    }

    // Runs the program under both tiers and asserts the equivalence
    // contract before returning the (fast-tier) result, so every unit test
    // in this module doubles as a cross-tier check.
    fn run(mp: &MachineProgram) -> SimResult {
        let cfg = MachineConfig::table3();
        let fast = simulate_tier(mp, &cfg, vec![0u8; 65536], SimTier::Fast).unwrap();
        let reference = simulate_tier(mp, &cfg, vec![0u8; 65536], SimTier::Reference).unwrap();
        assert_eq!(fast, reference, "tier divergence");
        fast
    }

    #[test]
    fn straight_line_arithmetic() {
        let mp = MachineProgram {
            blocks: vec![vec![
                bundle(vec![
                    Inst::new(Opcode::MovI).dst(VReg(1)).imm(6),
                    Inst::new(Opcode::MovI).dst(VReg(2)).imm(7),
                ]),
                bundle(vec![Inst::new(Opcode::Mul)
                    .dst(VReg(3))
                    .args(&[VReg(1), VReg(2)])]),
                bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(3)])]),
            ]],
            entry: 0,
        };
        let r = run(&mp);
        assert_eq!(r.ret, 42);
        assert_eq!(r.insts, 4);
        // mul has 3-cycle latency: ret stalls for it.
        assert!(r.cycles >= 4, "cycles={}", r.cycles);
    }

    #[test]
    fn load_latency_stalls_consumer() {
        // ld -> immediately consume: expect the cold-miss latency in cycles.
        let mp = MachineProgram {
            blocks: vec![vec![
                bundle(vec![Inst::new(Opcode::MovI).dst(VReg(1)).imm(8192)]),
                bundle(vec![Inst::new(Opcode::Ld(Width::B8))
                    .dst(VReg(2))
                    .args(&[VReg(1)])]),
                bundle(vec![Inst::new(Opcode::AddI)
                    .dst(VReg(3))
                    .args(&[VReg(2)])
                    .imm(1)]),
                bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(3)])]),
            ]],
            entry: 0,
        };
        let r = run(&mp);
        assert_eq!(r.ret, 1);
        assert!(r.cycles >= 35, "cold miss must stall: {}", r.cycles);
        assert_eq!(r.cache.l2_misses, 1);
    }

    #[test]
    fn prefetch_hides_load_latency() {
        // prefetch far ahead of the load: the load hits L1.
        let make = |with_prefetch: bool| {
            let mut bundles = vec![bundle(vec![
                Inst::new(Opcode::MovI).dst(VReg(1)).imm(8192),
                Inst::new(Opcode::MovI).dst(VReg(4)).imm(0),
            ])];
            if with_prefetch {
                bundles.push(bundle(vec![Inst::new(Opcode::Prefetch).args(&[VReg(1)])]));
            }
            // Busy work to give the prefetch time to land.
            for _ in 0..40 {
                bundles.push(bundle(vec![Inst::new(Opcode::AddI)
                    .dst(VReg(4))
                    .args(&[VReg(4)])
                    .imm(1)]));
            }
            bundles.push(bundle(vec![Inst::new(Opcode::Ld(Width::B8))
                .dst(VReg(2))
                .args(&[VReg(1)])]));
            bundles.push(bundle(vec![Inst::new(Opcode::Add)
                .dst(VReg(3))
                .args(&[VReg(2), VReg(4)])]));
            bundles.push(bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(3)])]));
            MachineProgram {
                blocks: vec![bundles],
                entry: 0,
            }
        };
        let without = run(&make(false));
        let with = run(&make(true));
        assert_eq!(without.ret, with.ret);
        assert!(
            with.cycles + 20 < without.cycles,
            "prefetch should hide the miss: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.cache.prefetches, 1);
    }

    #[test]
    fn mispredicted_branch_pays_penalty() {
        // Loop 100 times with an alternating inner branch; compare cycle
        // count against a version with a constant (predictable) branch.
        let make = |alternating: bool| {
            // b0: i=0; p_exit? -> b3 ; body computes parity branch to b1/b2
            // Simplified: single loop block with a CBr over parity to same join.
            let mut blocks = Vec::new();
            // block 0: init
            blocks.push(vec![
                bundle(vec![
                    Inst::new(Opcode::MovI).dst(VReg(1)).imm(0), // i
                    Inst::new(Opcode::MovI).dst(VReg(2)).imm(0), // acc
                ]),
                bundle(vec![Inst::new(Opcode::Br).target(BlockId(1))]),
            ]);
            // block 1: loop header/body
            blocks.push(vec![
                bundle(vec![Inst::new(Opcode::AndI)
                    .dst(VReg(3))
                    .args(&[VReg(1)])
                    .imm(if alternating { 1 } else { 0 })]),
                bundle(vec![Inst::new(Opcode::CmpEqI)
                    .dst(VReg(0))
                    .args(&[VReg(3)])
                    .imm(1)]),
                bundle(vec![Inst::new(Opcode::CBr)
                    .args(&[VReg(0)])
                    .target(BlockId(2))]),
                bundle(vec![Inst::new(Opcode::Br).target(BlockId(2))]),
            ]);
            // block 2: latch
            blocks.push(vec![
                bundle(vec![Inst::new(Opcode::AddI)
                    .dst(VReg(1))
                    .args(&[VReg(1)])
                    .imm(1)]),
                bundle(vec![Inst::new(Opcode::CmpLtI)
                    .dst(VReg(0))
                    .args(&[VReg(1)])
                    .imm(100)]),
                bundle(vec![Inst::new(Opcode::CBr)
                    .args(&[VReg(0)])
                    .target(BlockId(1))]),
                bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(2)])]),
            ]);
            MachineProgram { blocks, entry: 0 }
        };
        let predictable = run(&make(false));
        let unpredictable = run(&make(true));
        assert!(
            unpredictable.cycles > predictable.cycles + 100,
            "alternating branch must cost mispredicts: {} vs {}",
            unpredictable.cycles,
            predictable.cycles
        );
        assert!(unpredictable.mispredicts > 30);
        assert!(predictable.mispredicts < 10);
    }

    #[test]
    fn nullified_instructions_do_not_write() {
        let mp = MachineProgram {
            blocks: vec![vec![
                bundle(vec![
                    Inst::new(Opcode::MovI).dst(VReg(1)).imm(5),
                    Inst::new(Opcode::PMovI).dst(VReg(0)).imm(0), // false
                ]),
                bundle(vec![Inst::new(Opcode::MovI)
                    .dst(VReg(1))
                    .imm(99)
                    .guarded(VReg(0))]),
                bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(1)])]),
            ]],
            entry: 0,
        };
        let r = run(&mp);
        assert_eq!(r.ret, 5);
        assert_eq!(r.nullified, 1);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_bounded() {
        let mp = MachineProgram {
            blocks: vec![vec![bundle(vec![Inst::new(Opcode::Ret)])]],
            entry: 0,
        };
        let cfg = MachineConfig::table3();
        let base = simulate(&mp, &cfg, vec![0u8; 4096]).unwrap().cycles;
        let a = simulate_noisy(&mp, &cfg, vec![0u8; 4096], 0.05, 7).unwrap();
        let b = simulate_noisy(&mp, &cfg, vec![0u8; 4096], 0.05, 7).unwrap();
        assert_eq!(a.cycles, b.cycles);
        let lo = (base as f64 * 0.94).floor() as u64;
        let hi = (base as f64 * 1.06).ceil() as u64;
        assert!(a.cycles >= lo.max(1) && a.cycles <= hi.max(2));
    }

    #[test]
    fn inst_limit_enforced() {
        let mp = MachineProgram {
            blocks: vec![vec![bundle(vec![Inst::new(Opcode::Br).target(BlockId(0))])]],
            entry: 0,
        };
        let mut cfg = MachineConfig::table3();
        cfg.max_insts = 50;
        assert!(matches!(
            simulate(&mp, &cfg, vec![0u8; 4096]),
            Err(SimError::InstLimit(50))
        ));
    }

    #[test]
    fn cycle_limit_enforced() {
        // An infinite loop with a huge instruction budget: only the
        // cooperative cycle deadline can stop it.
        let mp = MachineProgram {
            blocks: vec![vec![bundle(vec![Inst::new(Opcode::Br).target(BlockId(0))])]],
            entry: 0,
        };
        let mut cfg = MachineConfig::table3();
        cfg.max_cycles = 40;
        assert!(matches!(
            simulate(&mp, &cfg, vec![0u8; 4096]),
            Err(SimError::CycleLimit(40))
        ));
    }

    #[test]
    fn cycle_limit_does_not_fire_on_terminating_programs() {
        let mp = MachineProgram {
            blocks: vec![vec![bundle(vec![Inst::new(Opcode::Ret)])]],
            entry: 0,
        };
        let r = simulate(&mp, &MachineConfig::table3(), vec![0u8; 4096]).unwrap();
        assert!(r.cycles < MachineConfig::table3().max_cycles);
    }
}
