#![warn(missing_docs)]
//! # metaopt-sim
//!
//! A cycle-level simulator for a parameterized EPIC/VLIW architecture,
//! standing in for Trimaran's simulator in the *Meta Optimization*
//! (PLDI 2003) reproduction.
//!
//! The default [`MachineConfig::table3`] model matches the paper's Table 3:
//! 64 general-purpose, 64 floating-point, and 256 predicate registers; four
//! fully-pipelined integer units (multiply 3 cycles, divide 8); two
//! floating-point units (3 cycles, divide 8); two memory units (L1 hits take
//! 2 cycles, L2 hits 7 cycles, anything beyond 35 cycles; stores are
//! buffered, 1 cycle); one branch unit; and a 2-bit dynamic branch predictor
//! with a 5-cycle misprediction penalty.
//!
//! The simulator executes [`MachineProgram`]s — register-allocated,
//! scheduled machine code produced by `metaopt-compiler` — and is also a
//! functional executor: it computes the same program results as the
//! `metaopt-ir` reference interpreter, which the test suite exploits for
//! differential testing of every compiled configuration.
//!
//! Simulation is **tiered** ([`SimTier`]): the default fast tier pre-decodes
//! a program into compact linear bytecode ([`bytecode`]) and executes it
//! several times faster than the original cycle-level interpreter, which is
//! kept as the reference tier ([`exec::simulate_reference`]). Both tiers are
//! bit-identical in every observable (cycles, memory traffic, statistics,
//! outputs), a contract enforced by a cross-tier differential test harness.
//!
//! The memory system models a two-level data cache with in-flight line fills,
//! so software prefetching has both its benefit (hiding miss latency) and its
//! costs (memory-unit issue slots, cache pollution) — the trade-off the
//! paper's third case study explores. An optional multiplicative noise model
//! ([`exec::simulate_noisy`]) reproduces the "real machine" measurement
//! jitter of the paper's Itanium experiments.

pub mod bytecode;
pub mod cache;
pub mod code;
pub mod exec;
pub mod machine;
pub mod predictor;

pub use bytecode::BytecodeProgram;
pub use code::{Bundle, MachineProgram};
pub use exec::{simulate, simulate_tier, simulate_traced, SimError, SimResult, SimTier};
pub use machine::{CacheConfig, MachineConfig};
