//! Machine configuration: register files, functional units, latencies,
//! cache hierarchy. [`MachineConfig::table3`] reproduces the paper's Table 3.

use metaopt_ir::Opcode;

/// Which functional unit class an operation issues on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    /// Integer ALU (also predicate ops and comparisons).
    Int,
    /// Floating-point unit.
    Float,
    /// Memory unit (loads, stores, prefetches, opaque calls).
    Mem,
    /// Branch unit.
    Branch,
}

/// Data-cache hierarchy parameters.
///
/// Latencies follow the paper's Table 3: L1 2 cycles, L2 7 cycles, and 35
/// cycles for anything beyond L2 (the paper's "L3 accesses require 35
/// cycles" — we model the last level as always hitting).
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Cache line size in bytes (shared by both levels).
    pub line_bytes: usize,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Latency of an access that misses both levels.
    pub miss_latency: u64,
}

impl CacheConfig {
    /// Small caches sized so the benchmark kernels produce realistic miss
    /// rates at laptop-scale working sets.
    pub fn table3() -> Self {
        CacheConfig {
            line_bytes: 32,
            l1_bytes: 8 * 1024,
            l1_assoc: 2,
            l1_latency: 2,
            l2_bytes: 64 * 1024,
            l2_assoc: 4,
            l2_latency: 7,
            miss_latency: 35,
        }
    }
}

/// Full machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of general-purpose (integer) registers.
    pub gpr: usize,
    /// Number of floating-point registers.
    pub fpr: usize,
    /// Number of predicate registers.
    pub pred: usize,
    /// Integer units.
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Memory units.
    pub mem_units: usize,
    /// Branch units.
    pub branch_units: usize,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Memory-queue occupancy of a software prefetch hint, in cycles.
    /// Software prefetches tie up the memory pipeline while their tag probe
    /// and fill request issue; demand accesses queue behind them (the
    /// paper's §7: unnecessary prefetches "saturate memory queues").
    pub prefetch_queue_cycles: u64,
    /// Data-cache hierarchy.
    pub cache: CacheConfig,
    /// Maximum simulated instructions before aborting.
    pub max_insts: u64,
    /// Maximum simulated cycles before aborting: the cooperative deadline
    /// checked once per issued bundle, bounding low-IPC schedules that stay
    /// under `max_insts` but stall indefinitely.
    pub max_cycles: u64,
}

impl MachineConfig {
    /// The paper's Table 3 EPIC machine (approximating Intel Itanium).
    pub fn table3() -> Self {
        MachineConfig {
            gpr: 64,
            fpr: 64,
            pred: 256,
            int_units: 4,
            fp_units: 2,
            mem_units: 2,
            branch_units: 1,
            mispredict_penalty: 5,
            prefetch_queue_cycles: 3,
            cache: CacheConfig::table3(),
            max_insts: metaopt_ir::budget::DEFAULT_MAX_STEPS,
            max_cycles: metaopt_ir::budget::DEFAULT_MAX_STEPS,
        }
    }

    /// The register-allocation case study's stressed machine: Table 3 with
    /// only 32 general-purpose and 32 floating-point registers (paper §6.1).
    pub fn regalloc_stress() -> Self {
        MachineConfig {
            gpr: 32,
            fpr: 32,
            ..MachineConfig::table3()
        }
    }

    /// An in-order "Itanium I"-like configuration used by the prefetching
    /// case study (paper §7): same core resources with Itanium I's 16 KiB
    /// L1D and a 96 KiB unified L2 slice.
    pub fn itanium_like() -> Self {
        let mut m = MachineConfig::table3();
        m.cache.l1_bytes = 16 * 1024;
        m.cache.l1_assoc = 4;
        m.cache.l2_bytes = 96 * 1024;
        m
    }

    /// A second target architecture for the paper's Fig. 16 two-machine
    /// cross-validation: double-size caches and a costlier miss.
    pub fn itanium_bigcache() -> Self {
        let mut m = MachineConfig::itanium_like();
        m.cache.l1_bytes *= 2;
        m.cache.l2_bytes *= 4;
        m.cache.miss_latency = 50;
        m
    }

    /// Total issue slots per cycle.
    pub fn issue_width(&self) -> usize {
        self.int_units + self.fp_units + self.mem_units + self.branch_units
    }

    /// Register-file size for a class.
    pub fn file_size(&self, class: metaopt_ir::RegClass) -> usize {
        match class {
            metaopt_ir::RegClass::Int => self.gpr,
            metaopt_ir::RegClass::Float => self.fpr,
            metaopt_ir::RegClass::Pred => self.pred,
        }
    }
}

/// Functional unit an opcode issues on.
pub fn unit_of(op: Opcode) -> UnitKind {
    use Opcode::*;
    match op {
        FAdd | FSub | FMul | FDiv | FSqrt | FAbs | FNeg | FMin | FMax | FMovI | FMov | FSel
        | FCmpEq | FCmpLt | FCmpLe | I2F | F2I | FBits | BitsF => UnitKind::Float,
        Ld(_) | St(_) | FLd | FSt | Prefetch | UnsafeCall => UnitKind::Mem,
        Br | CBr | Ret | Call => UnitKind::Branch,
        _ => UnitKind::Int,
    }
}

/// Result-ready latency of an opcode, excluding memory ops (whose latency
/// comes from the cache model). Matches Table 3: integer ops 1 cycle except
/// multiply 3 / divide 8; FP ops 3 cycles except divide 8; buffered stores 1.
pub fn latency_of(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Mul | MulI => 3,
        Div | Rem => 8,
        FDiv | FSqrt => 8,
        FAdd | FSub | FMul | FMin | FMax | FAbs | FNeg | FSel | I2F | F2I => 3,
        FMovI | FMov | FBits | BitsF => 1,
        UnsafeCall => 8,
        St(_) | FSt | Prefetch => 1,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::{RegClass, Width};

    #[test]
    fn table3_matches_paper() {
        let m = MachineConfig::table3();
        assert_eq!((m.gpr, m.fpr, m.pred), (64, 64, 256));
        assert_eq!(
            (m.int_units, m.fp_units, m.mem_units, m.branch_units),
            (4, 2, 2, 1)
        );
        assert_eq!(m.mispredict_penalty, 5);
        assert_eq!(m.cache.l1_latency, 2);
        assert_eq!(m.cache.l2_latency, 7);
        assert_eq!(m.cache.miss_latency, 35);
        assert_eq!(m.issue_width(), 9);
    }

    #[test]
    fn regalloc_stress_halves_registers() {
        let m = MachineConfig::regalloc_stress();
        assert_eq!((m.gpr, m.fpr), (32, 32));
        assert_eq!(m.pred, 256);
    }

    #[test]
    fn unit_assignment() {
        assert_eq!(unit_of(Opcode::Add), UnitKind::Int);
        assert_eq!(unit_of(Opcode::FMul), UnitKind::Float);
        assert_eq!(unit_of(Opcode::Ld(Width::B8)), UnitKind::Mem);
        assert_eq!(unit_of(Opcode::CBr), UnitKind::Branch);
        assert_eq!(unit_of(Opcode::CmpLt), UnitKind::Int);
        assert_eq!(unit_of(Opcode::Prefetch), UnitKind::Mem);
    }

    #[test]
    fn latencies_match_table3() {
        assert_eq!(latency_of(Opcode::Add), 1);
        assert_eq!(latency_of(Opcode::Mul), 3);
        assert_eq!(latency_of(Opcode::Div), 8);
        assert_eq!(latency_of(Opcode::FAdd), 3);
        assert_eq!(latency_of(Opcode::FDiv), 8);
        assert_eq!(latency_of(Opcode::St(Width::B8)), 1);
    }

    #[test]
    fn file_sizes() {
        let m = MachineConfig::table3();
        assert_eq!(m.file_size(RegClass::Int), 64);
        assert_eq!(m.file_size(RegClass::Float), 64);
        assert_eq!(m.file_size(RegClass::Pred), 256);
    }
}
