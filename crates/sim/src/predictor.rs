//! 2-bit saturating-counter branch predictor (paper Table 3).

use std::collections::HashMap;

/// Per-site 2-bit saturating counters. Sites are identified by an opaque
/// `u64` key (the executor uses `(block, bundle, slot)` packed).
#[derive(Debug, Default)]
pub struct TwoBitPredictor {
    counters: HashMap<u64, u8>,
    /// Predictions made.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl TwoBitPredictor {
    /// Fresh predictor, counters initialized weakly-not-taken.
    pub fn new() -> Self {
        TwoBitPredictor::default()
    }

    /// Predict the branch at `site`, observe the actual `taken` outcome,
    /// update state, and return whether the prediction was correct.
    pub fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        let ctr = self.counters.entry(site).or_insert(1);
        let predicted_taken = *ctr >= 2;
        *ctr = if taken {
            (*ctr + 1).min(3)
        } else {
            ctr.saturating_sub(1)
        };
        self.predictions += 1;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Misprediction rate so far (0.0 if no predictions yet).
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = TwoBitPredictor::new();
        // Always-taken branch: wrong at most twice, right forever after.
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(7, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "wrong={wrong}");
        assert!(p.mispredict_rate() < 0.05);
    }

    #[test]
    fn tolerates_single_anomaly() {
        let mut p = TwoBitPredictor::new();
        for _ in 0..10 {
            p.predict_and_update(1, true);
        }
        p.predict_and_update(1, false); // one not-taken
        assert!(p.predict_and_update(1, true), "2-bit hysteresis holds");
    }

    #[test]
    fn alternating_branch_defeats_it() {
        let mut p = TwoBitPredictor::new();
        let mut correct = 0;
        for i in 0..100 {
            if p.predict_and_update(2, i % 2 == 0) {
                correct += 1;
            }
        }
        assert!(correct <= 60, "correct={correct}");
    }

    #[test]
    fn sites_are_independent() {
        let mut p = TwoBitPredictor::new();
        for _ in 0..10 {
            p.predict_and_update(1, true);
            p.predict_and_update(2, false);
        }
        assert!(p.predict_and_update(1, true));
        assert!(p.predict_and_update(2, false));
    }
}
