//! Behavioral tests of the machine model: timing properties that the
//! compiler's heuristics (and the paper's trade-offs) rely on.

use metaopt_ir::{Inst, Opcode, VReg, Width};
use metaopt_sim::code::verify_machine;
use metaopt_sim::exec::{simulate, SimError};
use metaopt_sim::{Bundle, MachineConfig, MachineProgram};

fn bundle(insts: Vec<Inst>) -> Bundle {
    Bundle { insts }
}

fn one_block(bundles: Vec<Bundle>) -> MachineProgram {
    MachineProgram {
        blocks: vec![bundles],
        entry: 0,
    }
}

fn mem() -> Vec<u8> {
    vec![0u8; 1 << 16]
}

#[test]
fn fp_divide_takes_eight_cycles() {
    let mp = one_block(vec![
        bundle(vec![
            Inst::new(Opcode::FMovI).dst(VReg(3)).fimm(10.0),
            Inst::new(Opcode::FMovI).dst(VReg(4)).fimm(4.0),
        ]),
        bundle(vec![Inst::new(Opcode::FDiv)
            .dst(VReg(5))
            .args(&[VReg(3), VReg(4)])]),
        bundle(vec![Inst::new(Opcode::F2I).dst(VReg(6)).args(&[VReg(5)])]),
        bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(6)])]),
    ]);
    let r = simulate(&mp, &MachineConfig::table3(), mem()).unwrap();
    assert_eq!(r.ret, 2);
    // movi(cy0) -> fdiv issues cy1, result at cy9; f2i at cy9 (3cy) -> 12; ret.
    assert!(r.cycles >= 12, "cycles {}", r.cycles);
}

#[test]
fn predicated_stores_do_not_write_memory() {
    let mp = one_block(vec![
        bundle(vec![
            Inst::new(Opcode::MovI).dst(VReg(4)).imm(8192),
            Inst::new(Opcode::MovI).dst(VReg(5)).imm(99),
            Inst::new(Opcode::PMovI).dst(VReg(0)).imm(0),
        ]),
        bundle(vec![Inst::new(Opcode::St(Width::B8))
            .args(&[VReg(4), VReg(5)])
            .guarded(VReg(0))]),
        bundle(vec![Inst::new(Opcode::Ld(Width::B8))
            .dst(VReg(6))
            .args(&[VReg(4)])]),
        bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(6)])]),
    ]);
    let r = simulate(&mp, &MachineConfig::table3(), mem()).unwrap();
    assert_eq!(r.ret, 0, "nullified store must not modify memory");
    assert_eq!(r.nullified, 1);
}

#[test]
fn prefetch_queue_delays_demand_loads() {
    // A burst of prefetches followed by an L1-resident load: the load's
    // data arrives later than without the prefetch burst.
    let make = |with_burst: bool| {
        let mut bundles = vec![bundle(vec![Inst::new(Opcode::MovI).dst(VReg(1)).imm(8192)])];
        // Warm the line and consume the value so the fill has completed
        // before the burst (otherwise the cold miss dominates both runs).
        bundles.push(bundle(vec![Inst::new(Opcode::Ld(Width::B8))
            .dst(VReg(2))
            .args(&[VReg(1)])]));
        bundles.push(bundle(vec![Inst::new(Opcode::AddI)
            .dst(VReg(9))
            .args(&[VReg(2)])
            .imm(0)]));
        bundles.push(bundle(vec![Inst::new(Opcode::AddI)
            .dst(VReg(9))
            .args(&[VReg(9)])
            .imm(0)]));
        if with_burst {
            for k in 0..4 {
                bundles.push(bundle(vec![Inst::new(Opcode::Prefetch)
                    .args(&[VReg(1)])
                    .imm(4096 + k * 64)]));
            }
        }
        bundles.push(bundle(vec![Inst::new(Opcode::Ld(Width::B8))
            .dst(VReg(3))
            .args(&[VReg(1)])]));
        bundles.push(bundle(vec![Inst::new(Opcode::AddI)
            .dst(VReg(4))
            .args(&[VReg(3)])
            .imm(1)]));
        bundles.push(bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(4)])]));
        one_block(bundles)
    };
    let cfg = MachineConfig::table3();
    let quiet = simulate(&make(false), &cfg, mem()).unwrap();
    let busy = simulate(&make(true), &cfg, mem()).unwrap();
    assert_eq!(quiet.ret, busy.ret);
    assert!(
        busy.cycles > quiet.cycles + 2 * cfg.prefetch_queue_cycles,
        "prefetch burst must delay the demand load: {} vs {}",
        busy.cycles,
        quiet.cycles
    );
}

#[test]
fn fell_off_block_is_reported() {
    let mp = one_block(vec![bundle(vec![Inst::new(Opcode::MovI)
        .dst(VReg(1))
        .imm(1)])]);
    assert!(matches!(
        simulate(&mp, &MachineConfig::table3(), mem()),
        Err(SimError::FellOffBlock(0))
    ));
}

#[test]
fn out_of_bounds_load_is_reported() {
    let mp = one_block(vec![
        bundle(vec![Inst::new(Opcode::MovI).dst(VReg(1)).imm(1 << 30)]),
        bundle(vec![Inst::new(Opcode::Ld(Width::B8))
            .dst(VReg(2))
            .args(&[VReg(1)])]),
        bundle(vec![Inst::new(Opcode::Ret)]),
    ]);
    assert!(matches!(
        simulate(&mp, &MachineConfig::table3(), mem()),
        Err(SimError::OutOfBounds { .. })
    ));
}

#[test]
fn sel_and_fsel_execute() {
    let mp = one_block(vec![
        bundle(vec![
            Inst::new(Opcode::MovI).dst(VReg(1)).imm(10),
            Inst::new(Opcode::MovI).dst(VReg(2)).imm(20),
            Inst::new(Opcode::PMovI).dst(VReg(0)).imm(1),
        ]),
        bundle(vec![Inst::new(Opcode::Sel).dst(VReg(3)).args(&[
            VReg(0),
            VReg(1),
            VReg(2),
        ])]),
        bundle(vec![Inst::new(Opcode::Ret).args(&[VReg(3)])]),
    ]);
    let r = simulate(&mp, &MachineConfig::table3(), mem()).unwrap();
    assert_eq!(r.ret, 10);
}

#[test]
fn ipc_and_stat_accounting() {
    let mut insts = Vec::new();
    for i in 0..8 {
        insts.push(bundle(vec![
            Inst::new(Opcode::MovI).dst(VReg(1 + i)).imm(i as i64),
            Inst::new(Opcode::MovI).dst(VReg(20 + i)).imm(i as i64),
        ]));
    }
    insts.push(bundle(vec![Inst::new(Opcode::Ret)]));
    let r = simulate(&one_block(insts), &MachineConfig::table3(), mem()).unwrap();
    assert_eq!(r.insts, 17);
    assert_eq!(r.bundles, 9);
    assert!(
        r.ipc() > 1.0,
        "two-wide bundles should exceed IPC 1: {}",
        r.ipc()
    );
}

#[test]
fn verify_machine_accepts_compiled_suite_output() {
    // The whole benchmark suite's baseline compilations verify.
    let machine = MachineConfig::table3();
    for b in metaopt_suite::int_benchmarks().into_iter().take(4) {
        let prog = b.program();
        let prepared = metaopt_compiler::prepare(&prog).unwrap();
        let profile = metaopt_ir::interp::run(
            &prepared,
            &metaopt_ir::interp::RunConfig {
                memory: Some(b.memory(&prepared, metaopt_suite::DataSet::Train)),
                profile: true,
                ..Default::default()
            },
        )
        .unwrap()
        .profile
        .unwrap();
        let compiled = metaopt_compiler::compile(
            &prepared,
            &profile.funcs[0],
            &machine,
            &metaopt_compiler::Passes::baseline(),
        )
        .unwrap();
        verify_machine(&compiled.code, &machine).expect("compiled code verifies");
    }
}
