//! The tiered simulator's equivalence contract, fuzzed: for **any** MiniC
//! program compiled under **any** priority functions, **any** legal
//! pipeline plan, on **any** of the three studies' machines (tiny register
//! files included), the bytecode fast tier must produce exactly the
//! reference interpreter tier's [`SimResult`] — cycles, dynamic counts,
//! branch and cache statistics, return value, and the final memory image —
//! and must fail with exactly the same [`SimError`] when instruction or
//! cycle budgets are squeezed.
//!
//! This is the cross-tier analogue of the compiler's
//! `compiled_code_matches_interpreter` differential test, and the proof
//! obligation behind making the fast tier the default.

use metaopt_compiler::{compile, prepare, Passes, PipelinePlan};
use metaopt_ir::interp::{run, RunConfig};
use metaopt_sim::{simulate_tier, MachineConfig, SimError, SimResult, SimTier};
use proptest::prelude::*;

/// A random but always-valid, always-terminating MiniC `main`.
#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    Store(Expr, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    For(u8, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Lit(i16),
    Var(usize),
    Load(Box<Expr>),
    Bin(u8, Box<Expr>, Box<Expr>),
}

const VARS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(Expr::Lit),
        (0usize..VARS.len()).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Load(Box::new(e))),
            (0u8..8, inner.clone(), inner).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        prop_oneof![
            ((0usize..VARS.len()), arb_expr()).prop_map(|(v, e)| Stmt::Assign(v, e)),
            (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::Store(i, v)),
        ]
        .boxed()
    } else {
        let inner = proptest::collection::vec(arb_stmt(depth - 1), 1..4);
        prop_oneof![
            3 => ((0usize..VARS.len()), arb_expr()).prop_map(|(v, e)| Stmt::Assign(v, e)),
            2 => (arb_expr(), arb_expr()).prop_map(|(i, v)| Stmt::Store(i, v)),
            2 => (arb_expr(), inner.clone(), proptest::collection::vec(arb_stmt(depth - 1), 0..3))
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            1 => ((2u8..10), inner).prop_map(|(n, b)| Stmt::For(n, b)),
        ]
        .boxed()
    }
}

fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => format!("{v}"),
        Expr::Var(v) => VARS[*v].to_string(),
        Expr::Load(ix) => format!("xs[abs({}) % 64]", expr_src(ix)),
        Expr::Bin(op, a, b) => {
            let o = ["+", "-", "*", "/", "%", "&", "|", "^"][(*op % 8) as usize];
            format!("({} {o} {})", expr_src(a), expr_src(b))
        }
    }
}

fn stmt_src(s: &Stmt, out: &mut String, loop_depth: usize, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(v, e) => {
            out.push_str(&format!("{pad}{} = {};\n", VARS[*v], expr_src(e)));
        }
        Stmt::Store(ix, v) => {
            out.push_str(&format!(
                "{pad}xs[abs({}) % 64] = {};\n",
                expr_src(ix),
                expr_src(v)
            ));
        }
        Stmt::If(c, t, e) => {
            out.push_str(&format!("{pad}if (({}) % 2 == 0) {{\n", expr_src(c)));
            for s in t {
                stmt_src(s, out, loop_depth, indent + 1);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    stmt_src(s, out, loop_depth, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::For(n, body) => {
            let v = format!("i{loop_depth}");
            out.push_str(&format!(
                "{pad}for (let {v} = 0; {v} < {n}; {v} = {v} + 1) {{\n"
            ));
            out.push_str(&format!("{pad}    a = a + {v};\n"));
            for s in body {
                stmt_src(s, out, loop_depth + 1, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_src(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    for s in stmts {
        stmt_src(s, &mut body, 0, 1);
    }
    format!(
        r#"
        global int xs[64];
        fn main() -> int {{
            let a = 1; let b = 2; let c = 3; let d = 4;
            for (let k = 0; k < 64; k = k + 1) {{ xs[k] = k * 2654435761 % 977; }}
{body}
            let h = a ^ b ^ c ^ d;
            for (let k = 0; k < 64; k = k + 1) {{ h = (h * 31 + xs[k]) % 1000003; }}
            return h;
        }}
    "#
    )
}

/// A handful of adversarial priority functions spanning the search space.
fn priorities(pick: u8) -> (f64, f64) {
    match pick % 5 {
        0 => (1e9, 1.0),
        1 => (-1e9, -1.0),
        2 => (0.0, 0.0),
        3 => (1.0, 1e6),
        _ => (-1.0, 1e-6),
    }
}

/// The three case studies' machines: Table 3 (hyperblock), the 32/32
/// register-starved variant (regalloc), and the Itanium-like prefetch
/// machine.
fn study_machine(pick: u8) -> MachineConfig {
    match pick % 3 {
        0 => MachineConfig::table3(),
        1 => MachineConfig::regalloc_stress(),
        _ => MachineConfig::itanium_like(),
    }
}

fn both_tiers(
    mp: &metaopt_sim::MachineProgram,
    cfg: &MachineConfig,
    mem: &[u8],
) -> (Result<SimResult, SimError>, Result<SimResult, SimError>) {
    let fast = simulate_tier(mp, cfg, mem.to_vec(), SimTier::Fast);
    let reference = simulate_tier(mp, cfg, mem.to_vec(), SimTier::Reference);
    (fast, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn tiers_are_bit_identical(
        stmts in proptest::collection::vec(arb_stmt(2), 1..6),
        pick in any::<u8>(),
        machine_pick in any::<u8>(),
        tiny_regs in any::<bool>(),
        unroll in any::<bool>(),
        squeeze in any::<bool>(),
    ) {
        let src = program_src(&stmts);
        let prog = metaopt_lang::compile(&src)
            .unwrap_or_else(|e| panic!("generated MiniC must compile: {e}\n{src}"));
        let prepared = prepare(&prog).expect("prepares");
        let profile = run(&prepared, &RunConfig { profile: true, ..Default::default() })
            .expect("profiles")
            .profile
            .expect("requested");

        let (hb_bias, ra_bias) = priorities(pick);
        let hb = move |r: &[f64], _: &[bool]| r[2] * 10.0 + hb_bias;
        let ra = move |r: &[f64], _: &[bool]| r[0] * ra_bias + r[2];
        let pf = |_: &[f64], b: &[bool]| b[0];
        let plan: PipelinePlan = ["prefetch,hyperblock,regalloc,schedule",
            "hyperblock,prefetch,regalloc,schedule",
            "hyperblock,regalloc,schedule",
            "prefetch,regalloc,schedule"][(pick % 4) as usize]
            .parse()
            .unwrap();
        let plan = if unroll { plan.with_unroll(8) } else { plan };
        let passes = Passes {
            plan,
            hyperblock: &hb,
            regalloc: &ra,
            prefetch: &pf,
            prefetch_iters_ahead: 4,
            check_ir: false,
            validate: metaopt_compiler::ValidationLevel::Off,
            tracer: metaopt_trace::Tracer::disabled(),
        };
        let mut machine = study_machine(machine_pick);
        if tiny_regs {
            machine.gpr = 10;
            machine.fpr = 8;
        }
        let compiled = compile(&prepared, &profile.funcs[0], &machine, &passes)
            .expect("compiles");
        let mem = compiled.initial_memory(&prepared);

        // Unconstrained run: both tiers must agree on every observable.
        let (fast, reference) = both_tiers(&compiled.code, &machine, &mem);
        prop_assert_eq!(fast, reference, "tier divergence in:\n{}", src);

        // Squeezed budgets: both tiers must fail identically, at the same
        // dynamic instruction / cooperative deadline.
        if squeeze {
            let mut tight = machine.clone();
            tight.max_insts = 300;
            tight.max_cycles = 500;
            let (fast, reference) = both_tiers(&compiled.code, &tight, &mem);
            prop_assert_eq!(fast, reference, "budget-fault divergence in:\n{}", src);
        }
    }
}

/// Every bundled suite kernel, compiled at baseline on its study machine,
/// simulates identically on both tiers — a deterministic anchor next to the
/// fuzzed property above.
#[test]
fn suite_kernels_are_tier_identical() {
    use metaopt_suite::{all_benchmarks, DataSet};
    for b in all_benchmarks() {
        let prog = b.program();
        let prepared = prepare(&prog).expect("prepares");
        let mem = b.memory(&prepared, DataSet::Train);
        let profile = run(
            &prepared,
            &RunConfig {
                memory: Some(mem.clone()),
                profile: true,
                ..Default::default()
            },
        )
        .expect("profiles")
        .profile
        .expect("requested");
        let machine = MachineConfig::table3();
        let compiled =
            compile(&prepared, &profile.funcs[0], &machine, &Passes::baseline()).expect("compiles");
        let mut m = mem.clone();
        m.resize(compiled.mem_size.max(m.len()), 0);
        let (fast, reference) = both_tiers(&compiled.code, &machine, &m);
        let fast = fast.expect("fast tier simulates");
        let reference = reference.expect("reference tier simulates");
        assert_eq!(
            fast, reference,
            "tier divergence on suite kernel {}",
            b.name
        );
    }
}
