//! Floating-point kernels (paper Table 5 / Figs. 13–16: SPECfp 92/95 for
//! training, SPECfp 2000 for cross-validation).
//!
//! These stress the memory hierarchy the way their namesakes do: stencil
//! sweeps (tomcatv, swim, mgrid, applu, apsi), linear algebra (nasa7,
//! su2cor, wupwise), strided FFT butterflies (turb3d, lucas), irregular
//! gathers (wave5, equake, ammp), and compute-dominated mixes (doduc,
//! mdljdp2).
//!
//! Working-set sizing is deliberate and reproduces the paper's §7 finding:
//! the SPEC92/95 **training** kernels are mostly L2-resident, so ORC-style
//! aggressive prefetching only wastes memory-unit slots (the paper: "ORC
//! overzealously prefetches... shutting off prefetching altogether achieves
//! gains within 7% of the specialized priority functions"), while the
//! SPEC2000 **cross-validation** kernels stream working sets well beyond
//! the L2, where aggressive prefetching is the right call (Fig. 16's
//! training-set-coverage caveat).

use crate::{Benchmark, Category};

macro_rules! with_rng {
    ($body:expr) => {
        concat!(
            "global int dataseed;\n",
            "global int rngstate;\n",
            "fn rnd() -> int {\n",
            "    rngstate = (rngstate * 1103515245 + 12345) % 2147483648;\n",
            "    return rngstate;\n",
            "}\n",
            "fn frnd() -> float { return i2f(rnd() % 1000) * 0.001; }\n",
            $body
        )
    };
}

const TOMCATV: &str = with_rng!(
    r#"
global float x[289];
global float y[289];
global float rx[289];
global float ry[289];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 289; i = i + 1) { x[i] = frnd(); y[i] = frnd(); }
    let s = 0.0;
    for (let iter = 0; iter < 45; iter = iter + 1) {
        // 17x17 mesh residual stencil (L1-resident in steady state, as in
        // the 95-era runs the paper trained on).
        for (let j = 1; j < 16; j = j + 1) {
            for (let i = 1; i < 16; i = i + 1) {
                let p = j * 17 + i;
                let xx = x[p + 1] - x[p - 1];
                let yx = y[p + 1] - y[p - 1];
                let xy = x[p + 17] - x[p - 17];
                let yy = y[p + 17] - y[p - 17];
                let a = 0.25 * (xy * xy + yy * yy);
                let b = 0.25 * (xx * xx + yx * yx);
                rx[p] = a * (x[p + 1] + x[p - 1]) - b * (x[p + 17] + x[p - 17]) + x[p] * 0.5;
                ry[p] = a * (y[p + 1] + y[p - 1]) - b * (y[p + 17] + y[p - 17]) + y[p] * 0.5;
            }
        }
        for (let p = 0; p < 289; p = p + 1) {
            x[p] = x[p] * 0.9 + rx[p] * 0.001;
            y[p] = y[p] * 0.9 + ry[p] * 0.001;
            s = s + rx[p] - ry[p];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 289; hk = hk + 1) {
        h = (h * 31 + (f2i(x[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const SWIM95: &str = with_rng!(
    r#"
global float u[256];
global float v[256];
global float p[256];
global float unew[256];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 256; i = i + 1) { u[i] = frnd(); v[i] = frnd(); p[i] = frnd() + 1.0; }
    let s = 0.0;
    for (let iter = 0; iter < 70; iter = iter + 1) {
        for (let j = 1; j < 15; j = j + 1) {
            for (let i = 1; i < 15; i = i + 1) {
                let k = j * 16 + i;
                let cu = 0.5 * (p[k] + p[k - 1]) * u[k];
                let cv = 0.5 * (p[k] + p[k - 16]) * v[k];
                let z = (v[k + 1] - v[k] + u[k + 16] - u[k]) / (p[k] + 1.0);
                unew[k] = u[k] + 0.1 * (cu - cv + z);
            }
        }
        for (let k = 0; k < 256; k = k + 1) {
            u[k] = unew[k] * 0.999;
            s = s + u[k];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 256; hk = hk + 1) {
        h = (h * 31 + (f2i(u[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const SU2COR: &str = with_rng!(
    r#"
global float m[1024];
global float vecin[512];
global float vecout[512];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) { m[i] = frnd() - 0.5; }
    for (let i = 0; i < 512; i = i + 1) { vecin[i] = frnd(); }
    let s = 0.0;
    for (let iter = 0; iter < 35; iter = iter + 1) {
        // Gauge-field-ish: alternating row and column sweeps (the column
        // sweep has stride 64*8 bytes — poor line reuse).
        for (let r = 0; r < 16; r = r + 1) {
            let acc = 0.0;
            for (let c = 0; c < 64; c = c + 1) { acc = acc + m[r * 64 + c] * vecin[c]; }
            vecout[r] = acc;
        }
        for (let c = 0; c < 64; c = c + 1) {
            let acc = 0.0;
            for (let r = 0; r < 16; r = r + 1) { acc = acc + m[r * 64 + c] * vecin[64 + r]; }
            vecout[64 + c] = acc * 0.5;
        }
        for (let i = 0; i < 128; i = i + 1) {
            vecin[i] = vecin[i] * 0.95 + vecout[i] * 0.05;
            s = s + vecout[i];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 512; hk = hk + 1) {
        h = (h * 31 + (f2i(vecin[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const TURB3D: &str = with_rng!(
    r#"
global float re[512];
global float im[512];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 512; i = i + 1) { re[i] = frnd() - 0.5; im[i] = frnd() - 0.5; }
    let s = 0.0;
    for (let iter = 0; iter < 18; iter = iter + 1) {
        // FFT-like butterfly passes with doubling strides.
        for (let span = 1; span < 512; span = span * 2) {
            let step = span * 2;
            for (let base = 0; base < 512; base = base + step) {
                for (let k = 0; k < span; k = k + 1) {
                    let a = base + k;
                    let b = a + span;
                    if (b < 512) {
                        let tr = re[b] * 0.7 - im[b] * 0.3;
                        let ti = re[b] * 0.3 + im[b] * 0.7;
                        re[b] = re[a] - tr;
                        im[b] = im[a] - ti;
                        re[a] = re[a] + tr;
                        im[a] = im[a] + ti;
                    }
                }
            }
        }
        for (let i = 0; i < 512; i = i + 1) {
            // Renormalize: the butterflies grow RMS magnitude ~9x per pass.
            re[i] = re[i] * 0.1;
            im[i] = im[i] * 0.1;
            s = s + re[i] + im[i];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 512; hk = hk + 1) {
        h = (h * 31 + (f2i(re[hk] * 1000000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const WAVE5: &str = with_rng!(
    r#"
global float field[1024];
global float px[256];
global float pv[256];
global int cell[256];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) { field[i] = frnd() - 0.5; }
    for (let i = 0; i < 256; i = i + 1) {
        px[i] = frnd() * 1000.0;
        pv[i] = frnd() - 0.5;
        cell[i] = rnd() % 1022;
    }
    let s = 0.0;
    for (let iter = 0; iter < 50; iter = iter + 1) {
        // Particle push: irregular gather from the field.
        for (let i = 0; i < 256; i = i + 1) {
            let c = cell[i];
            let e = field[c] * 0.5 + field[c + 1] * 0.5;
            pv[i] = pv[i] + e * 0.1;
            px[i] = px[i] + pv[i];
            if (px[i] < 0.0) { px[i] = px[i] + 1000.0; }
            if (px[i] >= 1000.0) { px[i] = px[i] - 1000.0; }
            cell[i] = f2i(px[i]) % 1022;
            if (cell[i] < 0) { cell[i] = 0; }
        }
        // Charge deposit: irregular scatter.
        for (let i = 0; i < 256; i = i + 1) {
            let c = cell[i];
            field[c] = field[c] * 0.999 + 0.001;
        }
        for (let i = 0; i < 256; i = i + 1) { s = s + pv[i]; }
    }
    let h = 0;
    for (let hk = 0; hk < 256; hk = hk + 1) {
        h = (h * 31 + (f2i(pv[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const NASA7: &str = with_rng!(
    r#"
global float a[576];
global float b[576];
global float c[576];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 576; i = i + 1) { a[i] = frnd(); b[i] = frnd(); c[i] = 0.0; }
    let s = 0.0;
    for (let iter = 0; iter < 9; iter = iter + 1) {
        // 24x24 matrix multiply (the kernels' core).
        for (let i = 0; i < 24; i = i + 1) {
            for (let j = 0; j < 24; j = j + 1) {
                let acc = 0.0;
                for (let k = 0; k < 24; k = k + 1) {
                    acc = acc + a[i * 24 + k] * b[k * 24 + j];
                }
                c[i * 24 + j] = acc;
            }
        }
        for (let i = 0; i < 576; i = i + 1) { s = s + c[i]; a[i] = a[i] * 0.999; }
    }
    let h = 0;
    for (let hk = 0; hk < 576; hk = hk + 1) {
        h = (h * 31 + (f2i(c[hk] * 100.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const DODUC: &str = with_rng!(
    r#"
global float state[256];
global float tbl[128];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 256; i = i + 1) { state[i] = frnd() + 0.1; }
    for (let i = 0; i < 128; i = i + 1) { tbl[i] = frnd() * 2.0 + 0.1; }
    let s = 0.0;
    // Compute-dominated Monte-Carlo-ish update: tiny working set, heavy
    // FP dependency chains — prefetching has nothing to win here.
    for (let iter = 0; iter < 300; iter = iter + 1) {
        for (let i = 0; i < 256; i = i + 1) {
            let v = state[i];
            let t = tbl[(i + iter) % 128];
            let w = v * t + 0.5 * v / (t + 1.0);
            w = w + sqrt(w * 0.25);
            if (w > 10.0) { w = w * 0.01; }
            state[i] = w * 0.9 + 0.01;
            s = s + w * 0.0001;
        }
    }
    let h = 0;
    for (let hk = 0; hk < 256; hk = hk + 1) {
        h = (h * 31 + (f2i(state[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const MDLJDP2: &str = with_rng!(
    r#"
global float posx[256];
global float posy[256];
global float fx[256];
global float fy[256];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 256; i = i + 1) { posx[i] = frnd() * 10.0; posy[i] = frnd() * 10.0; }
    let s = 0.0;
    for (let iter = 0; iter < 10; iter = iter + 1) {
        for (let i = 0; i < 256; i = i + 1) { fx[i] = 0.0; fy[i] = 0.0; }
        // Pair interactions with cutoff (branch rate depends on geometry).
        for (let i = 0; i < 256; i = i + 1) {
            for (let j = i + 1; j < 256; j = j + 8) {
                let dx = posx[i] - posx[j];
                let dy = posy[i] - posy[j];
                let r2 = dx * dx + dy * dy;
                if (r2 < 9.0) {
                    let inv = 1.0 / (r2 + 0.01);
                    let f = inv * inv - 0.5 * inv;
                    fx[i] = fx[i] + f * dx;
                    fy[i] = fy[i] + f * dy;
                }
            }
        }
        for (let i = 0; i < 256; i = i + 1) {
            posx[i] = posx[i] + fx[i] * 0.001;
            posy[i] = posy[i] + fy[i] * 0.001;
            s = s + fx[i] + fy[i];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 256; hk = hk + 1) {
        h = (h * 31 + (f2i(posx[hk] * 1000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const MGRID95: &str = with_rng!(
    r#"
global float grid[729];
global float tmp[729];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 729; i = i + 1) { grid[i] = frnd() - 0.5; }
    let s = 0.0;
    // 9^3 grid: 7-point relaxation, three sweeps per iteration with
    // strides 1, 9, and 81 (the classic mgrid access pattern).
    for (let iter = 0; iter < 30; iter = iter + 1) {
        for (let z = 1; z < 8; z = z + 1) {
            for (let y = 1; y < 8; y = y + 1) {
                for (let x = 1; x < 8; x = x + 1) {
                    let k = z * 81 + y * 9 + x;
                    tmp[k] = 0.5 * grid[k]
                        + 0.0833 * (grid[k - 1] + grid[k + 1]
                                    + grid[k - 9] + grid[k + 9]
                                    + grid[k - 81] + grid[k + 81]);
                }
            }
        }
        for (let k = 0; k < 729; k = k + 1) { grid[k] = tmp[k]; s = s + tmp[k]; }
    }
    let h = 0;
    for (let hk = 0; hk < 729; hk = hk + 1) {
        h = (h * 31 + (f2i(grid[hk] * 100000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const APSI: &str = with_rng!(
    r#"
global float t[1024];
global float q[1024];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) { t[i] = frnd() * 30.0; q[i] = frnd(); }
    let s = 0.0;
    // 16 columns x 64 levels; vertical (stride-16) diffusion sweeps, the
    // apsi signature access pattern.
    for (let iter = 0; iter < 28; iter = iter + 1) {
        for (let col = 0; col < 16; col = col + 1) {
            for (let lev = 1; lev < 63; lev = lev + 1) {
                let k = lev * 16 + col;
                let dt = t[k + 16] - 2.0 * t[k] + t[k - 16];
                let adv = q[k] * (t[k] - t[k - 16]);
                t[k] = t[k] + 0.01 * dt - 0.005 * adv;
            }
        }
        for (let k = 0; k < 1024; k = k + 1) { s = s + t[k] * 0.001; }
    }
    let h = 0;
    for (let hk = 0; hk < 1024; hk = hk + 1) {
        h = (h * 31 + (f2i(t[hk] * 100.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

// ---- SPEC2000-like cross-validation set (Fig. 16) ----

const WUPWISE: &str = with_rng!(
    r#"
global float ar[8192];
global float ai[8192];
global float br[8192];
global float bi[8192];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 8192; i = i + 1) {
        ar[i] = frnd() - 0.5; ai[i] = frnd() - 0.5;
        br[i] = frnd() - 0.5; bi[i] = frnd() - 0.5;
    }
    let s = 0.0;
    // Long unit-stride complex AXPY streams over 256 KiB of data: the
    // streaming case where aggressive prefetching *is* the right call.
    for (let iter = 0; iter < 4; iter = iter + 1) {
        for (let i = 0; i < 8192; i = i + 1) {
            let tr = ar[i] * br[i] - ai[i] * bi[i];
            let ti = ar[i] * bi[i] + ai[i] * br[i];
            ar[i] = ar[i] * 0.5 + tr * 0.1;
            ai[i] = ai[i] * 0.5 + ti * 0.1;
            s = s + tr - ti;
        }
    }
    let h = 0;
    for (let hk = 0; hk < 8192; hk = hk + 1) {
        h = (h * 31 + (f2i(ar[hk] * 100000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const SWIM00: &str = with_rng!(
    r#"
global float u[8192];
global float unew[8192];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 8192; i = i + 1) { u[i] = frnd(); }
    let s = 0.0;
    // Bigger swim: 128x64 grid streamed repeatedly (64 KiB per array).
    for (let iter = 0; iter < 5; iter = iter + 1) {
        for (let j = 1; j < 127; j = j + 1) {
            for (let i = 1; i < 63; i = i + 1) {
                let k = j * 64 + i;
                unew[k] = 0.6 * u[k] + 0.1 * (u[k - 1] + u[k + 1] + u[k - 64] + u[k + 64]);
            }
        }
        for (let k = 0; k < 8192; k = k + 1) { u[k] = unew[k]; s = s + u[k] * 0.001; }
    }
    let h = 0;
    for (let hk = 0; hk < 8192; hk = hk + 1) {
        h = (h * 31 + (f2i(u[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const MGRID00: &str = with_rng!(
    r#"
global float grid[9261];
global float tmp[9261];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 9261; i = i + 1) { grid[i] = frnd() - 0.5; }
    let s = 0.0;
    // 21^3 grid (72 KiB per array) — exceeds the simulated L2 outright.
    for (let iter = 0; iter < 2; iter = iter + 1) {
        for (let z = 1; z < 20; z = z + 1) {
            for (let y = 1; y < 20; y = y + 1) {
                for (let x = 1; x < 20; x = x + 1) {
                    let k = z * 441 + y * 21 + x;
                    tmp[k] = 0.5 * grid[k]
                        + 0.0833 * (grid[k - 1] + grid[k + 1]
                                    + grid[k - 21] + grid[k + 21]
                                    + grid[k - 441] + grid[k + 441]);
                }
            }
        }
        for (let k = 0; k < 9261; k = k + 1) { grid[k] = tmp[k]; s = s + tmp[k]; }
    }
    let h = 0;
    for (let hk = 0; hk < 9261; hk = hk + 1) {
        h = (h * 31 + (f2i(grid[hk] * 100000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const APPLU: &str = with_rng!(
    r#"
global float rsd[6144];
global float flux[6144];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 6144; i = i + 1) { rsd[i] = frnd() - 0.5; }
    let s = 0.0;
    // SSOR-like forward and backward sweeps (loop-carried along the sweep).
    for (let iter = 0; iter < 5; iter = iter + 1) {
        for (let k = 5; k < 6144; k = k + 1) {
            flux[k] = rsd[k] - 0.2 * rsd[k - 1] - 0.1 * rsd[k - 5];
        }
        for (let k = 6138; k >= 0; k = k - 1) {
            rsd[k] = flux[k] - 0.2 * flux[k + 1] - 0.1 * flux[min(k + 5, 6143)];
        }
        for (let k = 0; k < 6144; k = k + 256) { s = s + rsd[k]; }
    }
    let h = 0;
    for (let hk = 0; hk < 6144; hk = hk + 1) {
        h = (h * 31 + (f2i(rsd[hk] * 100000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const EQUAKE: &str = with_rng!(
    r#"
global float val[8192];
global int col[8192];
global float x[2048];
global float y[2048];
fn main() -> int {
    rngstate = dataseed;
    // Sparse matrix in flat CSR-ish layout: 4 nonzeros per row.
    for (let i = 0; i < 8192; i = i + 1) {
        val[i] = frnd() - 0.5;
        col[i] = rnd() % 2048;
    }
    for (let i = 0; i < 2048; i = i + 1) { x[i] = frnd(); }
    let s = 0.0;
    for (let iter = 0; iter < 10; iter = iter + 1) {
        // Sparse matvec: the column gather is data-dependent (no stride).
        for (let r = 0; r < 2048; r = r + 1) {
            let acc = 0.0;
            for (let e = 0; e < 4; e = e + 1) {
                let k = r * 4 + e;
                acc = acc + val[k] * x[col[k]];
            }
            y[r] = acc;
        }
        for (let r = 0; r < 2048; r = r + 1) { x[r] = x[r] * 0.9 + y[r] * 0.1; s = s + y[r] * 0.01; }
    }
    let h = 0;
    for (let hk = 0; hk < 2048; hk = hk + 1) {
        h = (h * 31 + (f2i(x[hk] * 100000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const AMMP: &str = with_rng!(
    r#"
global float ax[1024];
global float ay[1024];
global float az[1024];
global int nbr[4096];
global float force[1024];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) {
        ax[i] = frnd() * 20.0; ay[i] = frnd() * 20.0; az[i] = frnd() * 20.0;
    }
    for (let i = 0; i < 4096; i = i + 1) { nbr[i] = rnd() % 1024; }
    let s = 0.0;
    for (let iter = 0; iter < 6; iter = iter + 1) {
        // Neighbor-list force evaluation: indirect loads, cutoff branches.
        for (let i = 0; i < 1024; i = i + 1) {
            let f = 0.0;
            for (let n = 0; n < 4; n = n + 1) {
                let j = nbr[i * 4 + n];
                let dx = ax[i] - ax[j];
                let dy = ay[i] - ay[j];
                let dz = az[i] - az[j];
                let r2 = dx * dx + dy * dy + dz * dz + 0.01;
                if (r2 < 100.0) { f = f + 1.0 / r2 - 0.01 * r2; }
            }
            force[i] = f;
        }
        for (let i = 0; i < 1024; i = i + 1) {
            ax[i] = ax[i] + force[i] * 0.0001;
            s = s + force[i] * 0.001;
        }
    }
    let h = 0;
    for (let hk = 0; hk < 1024; hk = hk + 1) {
        h = (h * 31 + (f2i(ax[hk] * 1000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const LUCAS: &str = with_rng!(
    r#"
global float data[8192];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 8192; i = i + 1) { data[i] = frnd() - 0.5; }
    let s = 0.0;
    // Lucas-Lehmer-ish: FFT squaring passes over a 64 KiB signal — long
    // power-of-two strides plus a unit-stride normalization stream.
    for (let iter = 0; iter < 2; iter = iter + 1) {
        for (let span = 1; span < 8192; span = span * 4) {
            let step = span * 2;
            for (let base = 0; base < 8192; base = base + step) {
                for (let k = 0; k < span; k = k + 1) {
                    let a = base + k;
                    let b = a + span;
                    if (b < 8192) {
                        let t = data[b] * 0.6;
                        data[b] = data[a] - t;
                        data[a] = data[a] + t;
                    }
                }
            }
        }
        for (let i = 0; i < 8192; i = i + 1) {
            // Chebyshev map keeps the signal chaotic (seed-sensitive).
            data[i] = 1.0 - 2.0 * data[i] * data[i];
            s = s + data[i];
        }
    }
    let h = 0;
    for (let hk = 0; hk < 8192; hk = hk + 1) {
        h = (h * 31 + (f2i(data[hk] * 10000.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

const APSI00: &str = with_rng!(
    r#"
global float t[8192];
global float w[8192];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 8192; i = i + 1) { t[i] = frnd() * 30.0; w[i] = frnd() - 0.5; }
    let s = 0.0;
    // 128 columns x 64 levels with vertical sweeps and a pointwise pass.
    for (let iter = 0; iter < 4; iter = iter + 1) {
        for (let col = 0; col < 128; col = col + 1) {
            for (let lev = 1; lev < 63; lev = lev + 1) {
                let k = lev * 128 + col;
                t[k] = t[k] + 0.01 * (t[k + 128] - 2.0 * t[k] + t[k - 128]) - 0.004 * w[k] * (t[k] - t[k - 128]);
            }
        }
        for (let k = 0; k < 8192; k = k + 1) { s = s + t[k] * 0.0001; }
    }
    let h = 0;
    for (let hk = 0; hk < 8192; hk = hk + 1) {
        h = (h * 31 + (f2i(t[hk] * 100.0) % 65536 + 65536)) % 1000003;
    }
    return h;
}
"#
);

/// All floating-point benchmarks.
pub fn all() -> Vec<Benchmark> {
    use Category::Fp;
    vec![
        Benchmark {
            name: "101.tomcatv",
            suite: "SPEC92fp",
            description: "Vectorized mesh generation",
            category: Fp,
            source: TOMCATV,
        },
        Benchmark {
            name: "102.swim",
            suite: "SPEC95fp",
            description: "Shallow water model",
            category: Fp,
            source: SWIM95,
        },
        Benchmark {
            name: "103.su2cor",
            suite: "SPEC95fp",
            description: "Quantum physics Monte Carlo",
            category: Fp,
            source: SU2COR,
        },
        Benchmark {
            name: "125.turb3d",
            suite: "SPEC95fp",
            description: "Turbulence simulation (FFT)",
            category: Fp,
            source: TURB3D,
        },
        Benchmark {
            name: "146.wave5",
            suite: "SPEC95fp",
            description: "Plasma particle-in-cell",
            category: Fp,
            source: WAVE5,
        },
        Benchmark {
            name: "093.nasa7",
            suite: "SPEC92fp",
            description: "NASA kernels (matmul core)",
            category: Fp,
            source: NASA7,
        },
        Benchmark {
            name: "015.doduc",
            suite: "SPEC92fp",
            description: "Nuclear reactor Monte Carlo",
            category: Fp,
            source: DODUC,
        },
        Benchmark {
            name: "034.mdljdp2",
            suite: "SPEC92fp",
            description: "Molecular dynamics",
            category: Fp,
            source: MDLJDP2,
        },
        Benchmark {
            name: "107.mgrid",
            suite: "SPEC95fp",
            description: "Multigrid solver",
            category: Fp,
            source: MGRID95,
        },
        Benchmark {
            name: "141.apsi",
            suite: "SPEC95fp",
            description: "Pollutant distribution model",
            category: Fp,
            source: APSI,
        },
        Benchmark {
            name: "168.wupwise",
            suite: "SPEC2000fp",
            description: "Quantum chromodynamics",
            category: Fp,
            source: WUPWISE,
        },
        Benchmark {
            name: "171.swim",
            suite: "SPEC2000fp",
            description: "Shallow water model (larger)",
            category: Fp,
            source: SWIM00,
        },
        Benchmark {
            name: "172.mgrid",
            suite: "SPEC2000fp",
            description: "Multigrid solver (larger)",
            category: Fp,
            source: MGRID00,
        },
        Benchmark {
            name: "173.applu",
            suite: "SPEC2000fp",
            description: "Parabolic PDE (SSOR)",
            category: Fp,
            source: APPLU,
        },
        Benchmark {
            name: "183.equake",
            suite: "SPEC2000fp",
            description: "Seismic wave propagation (sparse)",
            category: Fp,
            source: EQUAKE,
        },
        Benchmark {
            name: "188.ammp",
            suite: "SPEC2000fp",
            description: "Computational chemistry",
            category: Fp,
            source: AMMP,
        },
        Benchmark {
            name: "189.lucas",
            suite: "SPEC2000fp",
            description: "Primality testing (FFT)",
            category: Fp,
            source: LUCAS,
        },
        Benchmark {
            name: "301.apsi",
            suite: "SPEC2000fp",
            description: "Pollutant distribution (larger)",
            category: Fp,
            source: APSI00,
        },
    ]
}
