//! Integer / multimedia kernels (paper Table 5: Mediabench, SPECint, misc).
//!
//! Each kernel reproduces the control-flow character of its namesake: codecs
//! with data-dependent run/step branches, compressors with hash probing,
//! interpreters and simulators with dispatch loops, a tokenizer, a toy
//! object database. All are self-seeding from the `dataseed` global and
//! return a checksum.

use crate::{Benchmark, Category};

/// Shared MiniC preamble: a linear-congruential PRNG over `dataseed`.
macro_rules! with_rng {
    ($body:expr) => {
        concat!(
            "global int dataseed;\n",
            "global int rngstate;\n",
            "fn rnd() -> int {\n",
            "    rngstate = (rngstate * 1103515245 + 12345) % 2147483648;\n",
            "    return rngstate;\n",
            "}\n",
            $body
        )
    };
}

const CODRLE4: &str = with_rng!(
    r#"
global byte input[2048];
global byte output[4200];
fn main() -> int {
    rngstate = dataseed;
    // Run-structured data: random values repeated for random run lengths.
    let i = 0;
    while (i < 2048) {
        let v = rnd() % 256;
        let len = 1 + rnd() % 9;
        let j = 0;
        while (j < len) {
            if (i < 2048) { input[i] = v; i = i + 1; }
            j = j + 1;
        }
    }
    let sum = 0;
    for (let rep = 0; rep < 6; rep = rep + 1) {
        // RLE type 4 encode: literal runs and repeat runs.
        let out = 0;
        let p = 0;
        while (p < 2048) {
            let v = input[p];
            let run = 1;
            // Sentinel trick: +130 marks "mismatch found" and exits.
            while (p + run < 2048 && run < 127) {
                if (input[p + run] == v) { run = run + 1; } else { run = run + 130; }
            }
            if (run > 127) { run = run - 130; }
            if (run >= 3) {
                output[out] = 255; output[out + 1] = run; output[out + 2] = v;
                out = out + 3;
            } else {
                let k = 0;
                while (k < run) { output[out] = input[p + k]; out = out + 1; k = k + 1; }
            }
            p = p + run;
        }
        sum = sum + out;
        let h = 0;
        for (let q = 0; q < out; q = q + 1) { h = (h * 131 + output[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const DECODRLE4: &str = with_rng!(
    r#"
global byte stream[3072];
global byte decoded[4096];
fn main() -> int {
    rngstate = dataseed;
    // Generate an RLE stream directly: mix of repeat and literal packets.
    let n = 0;
    while (n < 3000) {
        if (rnd() % 3 == 0) {
            stream[n] = 255; stream[n + 1] = 3 + rnd() % 60; stream[n + 2] = rnd() % 255;
            n = n + 3;
        } else {
            stream[n] = rnd() % 255;
            n = n + 1;
        }
    }
    let sum = 0;
    for (let rep = 0; rep < 10; rep = rep + 1) {
        let p = 0;
        let out = 0;
        while (p < n) {
            let v = stream[p];
            if (v == 255) {
                if (p + 2 < n) {
                    let len = stream[p + 1];
                    let fill = stream[p + 2];
                    let k = 0;
                    while (k < len) {
                        if (out < 4096) { decoded[out] = fill; out = out + 1; }
                        k = k + 1;
                    }
                    p = p + 3;
                } else {
                    p = n;
                }
            } else {
                if (out < 4096) { decoded[out] = v; out = out + 1; }
                p = p + 1;
            }
        }
        let h = 0;
        for (let q = 0; q < out; q = q + 1) { h = (h * 257 + decoded[q]) % 1000003; }
        sum = sum + h + out;
    }
    return sum;
}
"#
);

const HUFF_ENC: &str = with_rng!(
    r#"
global byte text[4096];
global int freq[64];
global int codelen[64];
global byte bits[8192];
fn main() -> int {
    rngstate = dataseed;
    // Skewed symbol distribution (text-like).
    for (let i = 0; i < 4096; i = i + 1) {
        let r = rnd() % 100;
        if (r < 40) { text[i] = rnd() % 4; }
        else if (r < 70) { text[i] = 4 + rnd() % 8; }
        else if (r < 90) { text[i] = 12 + rnd() % 16; }
        else { text[i] = 28 + rnd() % 36; }
    }
    for (let s = 0; s < 64; s = s + 1) { freq[s] = 1; }
    for (let i = 0; i < 4096; i = i + 1) { freq[text[i]] = freq[text[i]] + 1; }
    // Shannon-ish code lengths: longer for rarer symbols.
    for (let s = 0; s < 64; s = s + 1) {
        let f = freq[s];
        let len = 2;
        let bound = 2048;
        while (f < bound) {
            if (len < 14) { len = len + 1; }
            bound = bound / 2;
        }
        codelen[s] = len;
    }
    // Emit "bits" (one byte per bit; enough for the control-flow shape).
    let sum = 0;
    for (let rep = 0; rep < 2; rep = rep + 1) {
        let out = 0;
        for (let i = 0; i < 4096; i = i + 1) {
            let s = text[i];
            let len = codelen[s];
            let code = s * 2654435761;
            for (let b = 0; b < len; b = b + 1) {
                if (out < 8192) {
                    bits[out] = (code >> b) & 1;
                    out = out + 1;
                }
            }
        }
        let h = 0;
        for (let q = 0; q < out; q = q + 1) { h = (h * 3 + bits[q]) % 1000003; }
        sum = sum + h + out;
    }
    return sum;
}
"#
);

const HUFF_DEC: &str = with_rng!(
    r#"
global byte bits[8192];
global int lens[64];
global byte out[4096];
fn main() -> int {
    rngstate = dataseed;
    for (let s = 0; s < 64; s = s + 1) { lens[s] = 3 + s % 11; }
    for (let i = 0; i < 8192; i = i + 1) { bits[i] = rnd() % 2; }
    let sum = 0;
    for (let rep = 0; rep < 8; rep = rep + 1) {
        // Walk a canonical-ish code tree: accumulate bits until the value
        // falls in a symbol band (data-dependent exit).
        let p = 0;
        let n = 0;
        while (p + 16 < 8192) {
            if (n >= 4096) { p = 8192; }
            else {
                let acc = 0;
                let len = 0;
                let done = 0;
                while (done == 0) {
                    acc = acc * 2 + bits[p];
                    p = p + 1;
                    len = len + 1;
                    if (len >= 3) {
                        let sym = (acc + len * 17) % 64;
                        if (lens[sym] <= len) { out[n] = sym; n = n + 1; done = 1; }
                        else if (len >= 14) { out[n] = acc % 64; n = n + 1; done = 1; }
                    }
                }
            }
        }
        let h = 0;
        for (let q = 0; q < n; q = q + 1) { h = (h * 131 + out[q]) % 1000003; }
        sum = sum + h + n;
        rngstate = rngstate + 1;
    }
    return sum;
}
"#
);

const DJPEG: &str = with_rng!(
    r#"
global int coef[1024];
global int quant[64];
global int pixels[1024];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 64; i = i + 1) { quant[i] = 1 + (i * 3) / 8; }
    for (let i = 0; i < 1024; i = i + 1) {
        // Sparse high-frequency coefficients, like real JPEG blocks.
        if (i % 64 < 8) { coef[i] = rnd() % 512 - 256; }
        else if (rnd() % 4 == 0) { coef[i] = rnd() % 64 - 32; }
        else { coef[i] = 0; }
    }
    let sum = 0;
    for (let rep = 0; rep < 10; rep = rep + 1) {
        for (let blk = 0; blk < 16; blk = blk + 1) {
            let base = blk * 64;
            // Dequant + separable 8x8 butterfly-ish IDCT approximation.
            for (let r = 0; r < 8; r = r + 1) {
                for (let c = 0; c < 4; c = c + 1) {
                    let i0 = base + r * 8 + c;
                    let i1 = base + r * 8 + 7 - c;
                    let a = coef[i0] * quant[r * 8 + c];
                    let b = coef[i1] * quant[r * 8 + 7 - c];
                    pixels[i0] = a + b;
                    pixels[i1] = (a - b) * (c + 1) / 2;
                }
            }
            for (let c = 0; c < 8; c = c + 1) {
                for (let r = 0; r < 4; r = r + 1) {
                    let i0 = base + r * 8 + c;
                    let i1 = base + (7 - r) * 8 + c;
                    let a = pixels[i0] + pixels[i1];
                    let b = pixels[i0] - pixels[i1];
                    // Saturating clamp to [0,255] with +128 level shift.
                    let v = a / 16 + 128;
                    if (v < 0) { v = 0; }
                    if (v > 255) { v = 255; }
                    pixels[i0] = v;
                    let w = b / 16 + 128;
                    if (w < 0) { w = 0; }
                    if (w > 255) { w = 255; }
                    pixels[i1] = w;
                }
            }
        }
        let h = 0;
        for (let q = 0; q < 1024; q = q + 1) { h = (h * 31 + pixels[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

/// Shared ADPCM-style step table and branchy quantizer shape.
const G721ENCODE: &str = with_rng!(
    r#"
global int pcm[2048];
global byte codes[2048];
global int steptab[49];
fn main() -> int {
    rngstate = dataseed;
    steptab[0] = 16;
    for (let i = 1; i < 49; i = i + 1) { steptab[i] = steptab[i - 1] * 11 / 10 + 1; }
    // Synthetic voice: slow wave + noise.
    let phase = 0;
    for (let i = 0; i < 2048; i = i + 1) {
        phase = phase + 3 + rnd() % 5;
        let wave = (phase % 200) - 100;
        pcm[i] = wave * 120 + rnd() % 256 - 128;
    }
    let sum = 0;
    for (let rep = 0; rep < 6; rep = rep + 1) {
        let pred = 0;
        let index = 16;
        for (let i = 0; i < 2048; i = i + 1) {
            let diff = pcm[i] - pred;
            let sign = 0;
            if (diff < 0) { sign = 8; diff = -diff; }
            let step = steptab[index];
            let code = 0;
            if (diff >= step) { code = 4; diff = diff - step; }
            if (diff >= step / 2) { code = code + 2; diff = diff - step / 2; }
            if (diff >= step / 4) { code = code + 1; }
            codes[i] = code + sign;
            // Reconstruct predictor.
            let delta = step / 8 + (code & 1) * step / 4 + ((code >> 1) & 1) * step / 2 + ((code >> 2) & 1) * step;
            if (sign == 8) { pred = pred - delta; } else { pred = pred + delta; }
            if (pred > 32767) { pred = 32767; }
            if (pred < -32768) { pred = -32768; }
            // Step adaptation (branchy table walk).
            if (code >= 4) { index = index + 4; }
            else if (code >= 2) { index = index + 1; }
            else { index = index - 1; }
            if (index < 0) { index = 0; }
            if (index > 48) { index = 48; }
        }
        let h = 0;
        for (let q = 0; q < 2048; q = q + 1) { h = (h * 17 + codes[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const G721DECODE: &str = with_rng!(
    r#"
global byte codes[2048];
global int pcm[2048];
global int steptab[49];
fn main() -> int {
    rngstate = dataseed;
    steptab[0] = 16;
    for (let i = 1; i < 49; i = i + 1) { steptab[i] = steptab[i - 1] * 11 / 10 + 1; }
    for (let i = 0; i < 2048; i = i + 1) { codes[i] = rnd() % 16; }
    let sum = 0;
    for (let rep = 0; rep < 8; rep = rep + 1) {
        let pred = 0;
        let index = 16;
        for (let i = 0; i < 2048; i = i + 1) {
            let code = codes[i];
            let step = steptab[index];
            let delta = step / 8 + (code & 1) * step / 4 + ((code >> 1) & 1) * step / 2 + ((code >> 2) & 1) * step;
            if (code >= 8) { pred = pred - delta; } else { pred = pred + delta; }
            if (pred > 32767) { pred = 32767; }
            if (pred < -32768) { pred = -32768; }
            pcm[i] = pred;
            let mag = code & 7;
            if (mag >= 4) { index = index + 4; }
            else if (mag >= 2) { index = index + 1; }
            else { index = index - 1; }
            if (index < 0) { index = 0; }
            if (index > 48) { index = 48; }
        }
        let h = 0;
        for (let q = 0; q < 2048; q = q + 1) { h = (h * 13 + (pcm[q] & 1023)) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const MPEG2DEC: &str = with_rng!(
    r#"
global int ref0[1024];
global int ref1[1024];
global int delta[1024];
global int frame[1024];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) {
        ref0[i] = rnd() % 256;
        ref1[i] = rnd() % 256;
        if (rnd() % 3 == 0) { delta[i] = rnd() % 64 - 32; } else { delta[i] = 0; }
    }
    let sum = 0;
    for (let rep = 0; rep < 12; rep = rep + 1) {
        for (let mb = 0; mb < 16; mb = mb + 1) {
            let mode = (mb + rep) % 3;
            let base = mb * 64;
            for (let i = 0; i < 64; i = i + 1) {
                let p = 0;
                if (mode == 0) { p = ref0[base + i]; }
                else if (mode == 1) { p = ref1[base + i]; }
                else { p = (ref0[base + i] + ref1[base + i] + 1) / 2; }
                let v = p + delta[base + i];
                if (v < 0) { v = 0; }
                if (v > 255) { v = 255; }
                frame[base + i] = v;
            }
        }
        let h = 0;
        for (let q = 0; q < 1024; q = q + 1) { h = (h * 37 + frame[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const RASTA: &str = with_rng!(
    r#"
global float spectrum[512];
global float bands[32];
global int labels[128];
fn main() -> int {
    rngstate = dataseed;
    let sum = 0;
    for (let framei = 0; framei < 40; framei = framei + 1) {
        for (let i = 0; i < 512; i = i + 1) {
            spectrum[i] = i2f(rnd() % 1000) * 0.001 + 0.01;
        }
        // Critical-band integration.
        for (let b = 0; b < 32; b = b + 1) {
            let acc = 0.0;
            for (let k = 0; k < 16; k = k + 1) {
                acc = acc + spectrum[b * 16 + k] * (1.0 + i2f(k) * 0.05);
            }
            bands[b] = acc;
        }
        // Log-ish compression + thresholded labeling (branchy).
        let lab = 0;
        for (let b = 0; b < 32; b = b + 1) {
            let v = bands[b];
            let l = 0;
            let t = 0.5;
            while (v > t) { l = l + 1; t = t * 2.0; }
            if (l > 7) { l = 7; }
            lab = lab * 8 + l;
            if (b % 4 == 3) {
                labels[(framei * 8 + b / 4) % 128] = lab % 65536;
                lab = 0;
            }
        }
    }
    let h = 0;
    for (let q = 0; q < 128; q = q + 1) { h = (h * 131 + labels[q]) % 1000003; }
    sum = sum + h;
    return sum;
}
"#
);

const RAWCAUDIO: &str = with_rng!(
    r#"
global int samples[4096];
global byte adpcm[4096];
global int steps[89];
fn main() -> int {
    rngstate = dataseed;
    steps[0] = 7;
    for (let i = 1; i < 89; i = i + 1) { steps[i] = steps[i - 1] * 11 / 10 + 1; }
    let phase = 0;
    for (let i = 0; i < 4096; i = i + 1) {
        phase = phase + 1 + rnd() % 7;
        samples[i] = ((phase % 128) - 64) * 250 + rnd() % 400 - 200;
    }
    let sum = 0;
    for (let rep = 0; rep < 3; rep = rep + 1) {
        let valpred = 0;
        let index = 0;
        for (let i = 0; i < 4096; i = i + 1) {
            let diff = samples[i] - valpred;
            let sign = 0;
            if (diff < 0) { sign = 8; diff = -diff; }
            let step = steps[index];
            let d = 0;
            let vpdiff = step >> 3;
            if (diff >= step) { d = 4; diff = diff - step; vpdiff = vpdiff + step; }
            step = step >> 1;
            if (diff >= step) { d = d + 2; diff = diff - step; vpdiff = vpdiff + step; }
            step = step >> 1;
            if (diff >= step) { d = d + 1; vpdiff = vpdiff + step; }
            if (sign == 8) { valpred = valpred - vpdiff; } else { valpred = valpred + vpdiff; }
            if (valpred > 32767) { valpred = 32767; }
            if (valpred < -32768) { valpred = -32768; }
            let code = d + sign;
            adpcm[i] = code;
            let idx = index;
            if (d >= 4) { idx = idx + 8 - d / 2; } else { idx = idx - 1; }
            index = idx;
            if (index < 0) { index = 0; }
            if (index > 88) { index = 88; }
        }
        let h = 0;
        for (let q = 0; q < 4096; q = q + 1) { h = (h * 19 + adpcm[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const RAWDAUDIO: &str = with_rng!(
    r#"
global byte adpcm[4096];
global int samples[4096];
global int steps[89];
fn main() -> int {
    rngstate = dataseed;
    steps[0] = 7;
    for (let i = 1; i < 89; i = i + 1) { steps[i] = steps[i - 1] * 11 / 10 + 1; }
    for (let i = 0; i < 4096; i = i + 1) { adpcm[i] = rnd() % 16; }
    let sum = 0;
    for (let rep = 0; rep < 4; rep = rep + 1) {
        let valpred = 0;
        let index = 0;
        for (let i = 0; i < 4096; i = i + 1) {
            let code = adpcm[i];
            let step = steps[index];
            let vpdiff = step >> 3;
            if ((code & 4) != 0) { vpdiff = vpdiff + step; }
            if ((code & 2) != 0) { vpdiff = vpdiff + (step >> 1); }
            if ((code & 1) != 0) { vpdiff = vpdiff + (step >> 2); }
            if ((code & 8) != 0) { valpred = valpred - vpdiff; } else { valpred = valpred + vpdiff; }
            if (valpred > 32767) { valpred = 32767; }
            if (valpred < -32768) { valpred = -32768; }
            samples[i] = valpred;
            let d = code & 7;
            if (d >= 4) { index = index + 8 - d / 2; } else { index = index - 1; }
            if (index < 0) { index = 0; }
            if (index > 88) { index = 88; }
        }
        let h = 0;
        for (let q = 0; q < 4096; q = q + 1) { h = (h * 23 + (samples[q] & 2047)) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const TOAST: &str = with_rng!(
    r#"
global int frame[1280];
global int lar[64];
global int residual[1280];
fn main() -> int {
    rngstate = dataseed;
    let phase = 0;
    for (let i = 0; i < 1280; i = i + 1) {
        phase = phase + 2 + rnd() % 3;
        frame[i] = ((phase % 160) - 80) * 300 + rnd() % 100;
    }
    let sum = 0;
    for (let rep = 0; rep < 8; rep = rep + 1) {
        for (let f = 0; f < 8; f = f + 1) {
            let base = f * 160;
            // Short-term LPC-ish analysis: reflection coefficients with
            // branchy quantization (GSM LARc style).
            for (let k = 0; k < 8; k = k + 1) {
                let acc = 0;
                for (let i = 0; i < 32; i = i + 1) {
                    acc = acc + frame[base + i * 5] * frame[base + min(i * 5 + k, 159)] / 4096;
                }
                let q = 0;
                let a = abs(acc);
                if (a >= 20000) { q = 31; }
                else if (a >= 10000) { q = 24 + a / 4000; }
                else if (a >= 4000) { q = 16 + a / 1500; }
                else { q = a / 300; }
                if (acc < 0) { q = -q; }
                lar[(rep % 8) * 8 + k] = q;
            }
            // Short-term filtering.
            let u = 0;
            for (let i = 0; i < 160; i = i + 1) {
                let x = frame[base + i];
                let y = x - u / 2;
                u = x + y / 4;
                residual[base + i] = y;
            }
        }
        let h = 0;
        for (let q = 0; q < 1280; q = q + 1) { h = (h * 29 + (residual[q] & 4095)) % 1000003; }
        for (let q = 0; q < 64; q = q + 1) { h = (h * 7 + (lar[q] & 63)) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const UNEPIC: &str = with_rng!(
    r#"
global int low[512];
global int high[512];
global int image[1024];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 512; i = i + 1) {
        low[i] = rnd() % 256;
        if (rnd() % 5 == 0) { high[i] = rnd() % 128 - 64; } else { high[i] = 0; }
    }
    let sum = 0;
    for (let rep = 0; rep < 20; rep = rep + 1) {
        // Inverse wavelet-ish reconstruction with clamping.
        for (let i = 0; i < 512; i = i + 1) {
            let even = low[i] + (high[i] + 1) / 2;
            let odd = even - high[i];
            if (even < 0) { even = 0; }
            if (even > 255) { even = 255; }
            if (odd < 0) { odd = 0; }
            if (odd > 255) { odd = 255; }
            image[i * 2] = even;
            image[i * 2 + 1] = odd;
        }
        let h = 0;
        for (let q = 0; q < 1024; q = q + 1) { h = (h * 41 + image[q]) % 1000003; }
        sum = sum + h;
        rngstate = rngstate + rep;
    }
    return sum;
}
"#
);

const CC1: &str = with_rng!(
    r#"
global byte src[4096];
global int toks[2048];
global int symtab[256];
fn main() -> int {
    rngstate = dataseed;
    // Pseudo C source: identifiers, numbers, operators, spaces.
    for (let i = 0; i < 4096; i = i + 1) {
        let r = rnd() % 10;
        if (r < 4) { src[i] = 97 + rnd() % 26; }       // letters
        else if (r < 6) { src[i] = 48 + rnd() % 10; }  // digits
        else if (r < 7) { src[i] = 32; }               // space
        else if (r < 8) { src[i] = 43 + rnd() % 4; }   // + , - .
        else if (r < 9) { src[i] = 40 + rnd() % 2; }   // parens
        else { src[i] = 59; }                          // ;
    }
    let sum = 0;
    for (let rep = 0; rep < 4; rep = rep + 1) {
        let nt = 0;
        let p = 0;
        while (p < 4096) {
            if (nt >= 2048) { p = 4096; }
            else {
                let c = src[p];
                if (c == 32) { p = p + 1; }
                else if (c >= 97) {
                    // Identifier: scan + hash into symtab (hazardous call
                    // models gcc's obstack bookkeeping).
                    let h = 0;
                    let scanning = 1;
                    while (scanning == 1) {
                        if (p < 4096) {
                            let d = src[p];
                            if (d >= 97) { h = (h * 31 + d) % 65536; p = p + 1; }
                            else { scanning = 0; }
                        } else { scanning = 0; }
                    }
                    let slot = h % 256;
                    if (symtab[slot] == 0) { symtab[slot] = h + 1; }
                    else if (symtab[slot] != h + 1) { symtab[slot] = (symtab[slot] + h) % 1000003 + 1; }
                    toks[nt] = 1000 + slot;
                    nt = nt + 1;
                }
                else if (c >= 48) {
                    if (c <= 57) {
                        let v = 0;
                        let scanning = 1;
                        while (scanning == 1) {
                            if (p < 4096) {
                                let d = src[p];
                                if (d >= 48 && d <= 57) { v = v * 10 + d - 48; p = p + 1; }
                                else { scanning = 0; }
                            } else { scanning = 0; }
                        }
                        toks[nt] = 2000 + v % 1000;
                        nt = nt + 1;
                    } else { toks[nt] = c; nt = nt + 1; p = p + 1; }
                }
                else { toks[nt] = c; nt = nt + 1; p = p + 1; }
            }
        }
        let h2 = ucall(7, nt);
        let acc = 0;
        for (let q = 0; q < nt; q = q + 1) { acc = (acc * 131 + toks[q]) % 1000003; }
        sum = sum + acc + h2 % 97;
    }
    return sum;
}
"#
);

const EQNTOTT: &str = with_rng!(
    r#"
global int rows[1024];
global int sorted[1024];
fn main() -> int {
    rngstate = dataseed;
    let sum = 0;
    for (let rep = 0; rep < 3; rep = rep + 1) {
        for (let i = 0; i < 1024; i = i + 1) { rows[i] = rnd() % 65536; }
        // cmppt-style comparison sort (insertion into runs).
        for (let i = 0; i < 1024; i = i + 1) { sorted[i] = rows[i]; }
        for (let gap = 512; gap > 0; gap = gap / 2) {
            for (let i = gap; i < 1024; i = i + 1) {
                let v = sorted[i];
                let j = i;
                while (j >= gap && sorted[max(j - gap, 0)] > v) { sorted[j] = sorted[j - gap]; j = j - gap; }
                sorted[j] = v;
            }
        }
        // Count bit transitions between adjacent rows (PLA term merging).
        let trans = 0;
        for (let i = 1; i < 1024; i = i + 1) {
            let x = sorted[i] ^ sorted[i - 1];
            while (x != 0) { trans = trans + (x & 1); x = x >> 1; }
        }
        sum = sum + trans;
        let h = 0;
        for (let q = 0; q < 1024; q = q + 1) { h = (h * 33 + sorted[q]) % 1000003; }
        sum = sum + h;
    }
    return sum;
}
"#
);

const COMPRESS: &str = with_rng!(
    r#"
global byte text[4096];
global int hashtab[1024];
global int codetab[1024];
global int outcodes[4096];
fn main() -> int {
    rngstate = dataseed;
    // Text with repeated phrases so the dictionary actually hits.
    let i = 0;
    while (i < 4096) {
        if (rnd() % 3 == 0) {
            let start = rnd() % max(i, 1);
            let len = 4 + rnd() % 12;
            let k = 0;
            while (k < len) {
                if (i < 4096) { text[i] = text[(start + k) % 4096]; i = i + 1; }
                k = k + 1;
            }
        } else {
            text[i] = 97 + rnd() % 16;
            i = i + 1;
        }
    }
    let sum = 0;
    for (let rep = 0; rep < 3; rep = rep + 1) {
        for (let k = 0; k < 1024; k = k + 1) { hashtab[k] = -1; codetab[k] = 0; }
        let nextcode = 256;
        let prefix = text[0];
        let n = 0;
        for (let p = 1; p < 4096; p = p + 1) {
            let c = text[p];
            let key = prefix * 256 + c;
            let h = (key * 2654435761) % 1024;
            if (h < 0) { h = -h; }
            let found = -1;
            let probes = 0;
            while (probes < 16) {
                if (hashtab[h] == key) { found = codetab[h]; probes = 99; }
                else if (hashtab[h] < 0) { probes = 77; }
                else { h = (h + 1) % 1024; probes = probes + 1; }
            }
            if (found >= 0) {
                prefix = found;
            } else {
                outcodes[n] = prefix;
                n = n + 1;
                if (nextcode < 4096) {
                    if (probes == 77) { hashtab[h] = key; codetab[h] = nextcode; }
                    nextcode = nextcode + 1;
                }
                prefix = c;
            }
        }
        outcodes[n] = prefix;
        n = n + 1;
        let acc = 0;
        for (let q = 0; q < n; q = q + 1) { acc = (acc * 131 + outcodes[q]) % 1000003; }
        sum = sum + acc + n;
    }
    return sum;
}
"#
);

const IJPEG: &str = with_rng!(
    r#"
global int image[1024];
global int dct[1024];
global int quant[64];
global byte zz[4096];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) { image[i] = rnd() % 256; }
    for (let i = 0; i < 64; i = i + 1) { quant[i] = 4 + i / 2; }
    let sum = 0;
    for (let rep = 0; rep < 8; rep = rep + 1) {
        for (let blk = 0; blk < 16; blk = blk + 1) {
            let base = blk * 64;
            // Forward butterfly DCT approximation, rows then columns.
            for (let r = 0; r < 8; r = r + 1) {
                for (let c = 0; c < 4; c = c + 1) {
                    let a = image[base + r * 8 + c];
                    let b = image[base + r * 8 + 7 - c];
                    dct[base + r * 8 + c] = a + b;
                    dct[base + r * 8 + 7 - c] = (a - b) * (4 - c);
                }
            }
            for (let c = 0; c < 8; c = c + 1) {
                for (let r = 0; r < 4; r = r + 1) {
                    let a = dct[base + r * 8 + c];
                    let b = dct[base + (7 - r) * 8 + c];
                    dct[base + r * 8 + c] = (a + b) / 2;
                    dct[base + (7 - r) * 8 + c] = (a - b) / 2;
                }
            }
            // Quantize + zero-run coding (sparsity-dependent branches).
            let zp = blk * 80;
            let run = 0;
            for (let k = 0; k < 64; k = k + 1) {
                let v = dct[base + k] / quant[k];
                if (v == 0) { run = run + 1; }
                else {
                    if (zp < 4090) {
                        zz[zp] = min(run, 255);
                        zz[zp + 1] = abs(v) % 256;
                        zp = zp + 2;
                    }
                    run = 0;
                }
            }
        }
        let h = 0;
        for (let q = 0; q < 4096; q = q + 1) { h = (h * 37 + zz[q]) % 1000003; }
        sum = sum + h;
        rngstate = rngstate + 3;
    }
    return sum;
}
"#
);

const LI: &str = with_rng!(
    r#"
global int code[2048];
global int stack[256];
global int env[64];
fn main() -> int {
    rngstate = dataseed;
    // Random but well-formed bytecode: ops keep the stack near the middle.
    for (let i = 0; i < 2048; i = i + 1) { code[i] = rnd() % 100; }
    for (let i = 0; i < 64; i = i + 1) { env[i] = rnd() % 1000; }
    let sum = 0;
    for (let rep = 0; rep < 3; rep = rep + 1) {
        let sp = 8;
        for (let k = 0; k < 8; k = k + 1) { stack[k] = k * 7; }
        let pc = 0;
        let executed = 0;
        while (executed < 12000) {
            let op = code[pc];
            pc = pc + 1;
            if (pc >= 2048) { pc = 0; }
            executed = executed + 1;
            if (op < 25) {           // push env var
                if (sp < 255) { stack[sp] = env[op % 64]; sp = sp + 1; }
            } else if (op < 45) {    // add
                if (sp >= 2) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }
            } else if (op < 60) {    // sub
                if (sp >= 2) { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }
            } else if (op < 70) {    // dup
                if (sp >= 1) { if (sp < 255) { stack[sp] = stack[sp - 1]; sp = sp + 1; } }
            } else if (op < 80) {    // store env
                if (sp >= 1) { env[op % 64] = stack[sp - 1]; sp = sp - 1; }
            } else if (op < 90) {    // conditional skip
                if (sp >= 1) {
                    sp = sp - 1;
                    if (stack[sp] % 2 == 0) { pc = pc + 3; if (pc >= 2048) { pc = pc % 2048; } }
                }
            } else {                 // cons-ish: combine two into hash
                if (sp >= 2) { stack[sp - 2] = (stack[sp - 2] * 31 + stack[sp - 1]) % 65536; sp = sp - 1; }
            }
            if (sp < 4) { stack[sp] = executed; sp = sp + 1; }
        }
        let h = 0;
        for (let q = 0; q < sp; q = q + 1) { h = (h * 131 + (stack[q] % 65536)) % 1000003; }
        for (let q = 0; q < 64; q = q + 1) { h = (h * 7 + (env[q] % 65536)) % 1000003; }
        sum = sum + h;
        rngstate = rngstate + 11;
    }
    return sum;
}
"#
);

const M88KSIM: &str = with_rng!(
    r#"
global int mem[2048];
global int regs[32];
fn main() -> int {
    rngstate = dataseed;
    // Instruction words: op in high bits, regs/imm below.
    for (let i = 0; i < 2048; i = i + 1) { mem[i] = rnd() % 16777216; }
    for (let i = 0; i < 32; i = i + 1) { regs[i] = i * 3; }
    let sum = 0;
    let pc = 0;
    let executed = 0;
    while (executed < 20000) {
        let iw = mem[pc];
        let op = (iw >> 20) % 8;
        let rd = (iw >> 15) % 32;
        let rs = (iw >> 10) % 32;
        let rt = (iw >> 5) % 32;
        let imm = iw % 1024;
        executed = executed + 1;
        pc = pc + 1;
        if (pc >= 2048) { pc = 0; }
        if (op == 0) { regs[rd] = regs[rs] + regs[rt]; }
        else if (op == 1) { regs[rd] = regs[rs] - regs[rt]; }
        else if (op == 2) { regs[rd] = regs[rs] + imm; }
        else if (op == 3) { regs[rd] = mem[(abs(regs[rs]) + imm) % 2048]; }
        else if (op == 4) { mem[(abs(regs[rs]) + imm) % 2048] = regs[rt]; }
        else if (op == 5) {
            if (regs[rs] > regs[rt]) { pc = (pc + imm % 64) % 2048; }
        }
        else if (op == 6) { regs[rd] = regs[rs] * 3 + 1; }
        else { regs[rd] = (regs[rs] >> 1) ^ regs[rt]; }
        regs[0] = 0;
    }
    let h = 0;
    for (let q = 0; q < 32; q = q + 1) { h = (h * 131 + (regs[q] % 1000003 + 1000003)) % 1000003; }
    for (let q = 0; q < 2048; q = q + 8) { h = (h * 31 + (mem[q] % 65536)) % 1000003; }
    sum = h;
    return sum;
}
"#
);

const VORTEX: &str = with_rng!(
    r#"
global int keys[1024];
global int vals[1024];
global int ops[2048];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1024; i = i + 1) { keys[i] = -1; }
    for (let i = 0; i < 2048; i = i + 1) { ops[i] = rnd() % 100000; }
    let sum = 0;
    for (let rep = 0; rep < 4; rep = rep + 1) {
        let hits = 0;
        let inserts = 0;
        let deletes = 0;
        for (let i = 0; i < 2048; i = i + 1) {
            let o = ops[i];
            let key = o / 4;
            let kind = o % 4;
            let h = (key * 2654435761) % 1024;
            if (h < 0) { h = -h; }
            // Linear probe.
            let slot = -1;
            let free = -1;
            let probes = 0;
            while (probes < 12) {
                let k = keys[h];
                if (k == key) { slot = h; probes = 99; }
                else if (k < 0) { if (free < 0) { free = h; } if (k == -1) { probes = 88; } else { h = (h + 1) % 1024; probes = probes + 1; } }
                else { h = (h + 1) % 1024; probes = probes + 1; }
            }
            if (kind <= 1) {         // lookup
                if (slot >= 0) { hits = hits + vals[slot] % 7 + 1; }
            } else if (kind == 2) {  // insert/update (hazardous allocation)
                if (slot >= 0) { vals[slot] = vals[slot] + 1; }
                else if (free >= 0) { keys[free] = key; vals[free] = ucall(3, key) % 1000; inserts = inserts + 1; }
            } else {                 // delete (tombstone -2)
                if (slot >= 0) { keys[slot] = -2; deletes = deletes + 1; }
            }
        }
        sum = sum + hits * 3 + inserts * 5 + deletes * 7;
        let h2 = 0;
        for (let q = 0; q < 1024; q = q + 1) {
            if (keys[q] >= 0) { h2 = (h2 * 131 + keys[q] % 65536 + vals[q] % 97) % 1000003; }
        }
        sum = sum + h2;
    }
    return sum;
}
"#
);

const OSDEMO: &str = with_rng!(
    r#"
global float verts[1536];
global float mat[16];
global int screen[512];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 1536; i = i + 1) { verts[i] = i2f(rnd() % 2000 - 1000) * 0.01; }
    for (let i = 0; i < 16; i = i + 1) { mat[i] = i2f(rnd() % 200 - 100) * 0.01; }
    mat[15] = 4.0;
    let sum = 0;
    for (let rep = 0; rep < 10; rep = rep + 1) {
        let visible = 0;
        for (let v = 0; v < 512; v = v + 1) {
            let x = verts[v * 3];
            let y = verts[v * 3 + 1];
            let z = verts[v * 3 + 2];
            let tx = mat[0] * x + mat[1] * y + mat[2] * z + mat[3];
            let ty = mat[4] * x + mat[5] * y + mat[6] * z + mat[7];
            let tz = mat[8] * x + mat[9] * y + mat[10] * z + mat[11];
            let tw = mat[12] * x + mat[13] * y + mat[14] * z + mat[15];
            if (tw < 0.001) { screen[v] = -1; }
            else {
                let sx = tx / tw;
                let sy = ty / tw;
                // Frustum clip (branchy).
                if (sx < -1.0) { screen[v] = -2; }
                else if (sx > 1.0) { screen[v] = -3; }
                else if (sy < -1.0) { screen[v] = -4; }
                else if (sy > 1.0) { screen[v] = -5; }
                else if (tz < 0.0) { screen[v] = -6; }
                else {
                    screen[v] = f2i((sx + 1.0) * 160.0) * 1000 + f2i((sy + 1.0) * 120.0);
                    visible = visible + 1;
                }
            }
        }
        let h = 0;
        for (let q = 0; q < 512; q = q + 1) { h = (h * 31 + (screen[q] % 65536 + 65536)) % 1000003; }
        sum = sum + h + visible;
    }
    return sum;
}
"#
);

const MIPMAP: &str = with_rng!(
    r#"
global float tex[4096];
global float mip[1024];
global float mip2[256];
fn main() -> int {
    rngstate = dataseed;
    for (let i = 0; i < 4096; i = i + 1) { tex[i] = i2f(rnd() % 256) / 255.0; }
    let sum = 0;
    for (let rep = 0; rep < 12; rep = rep + 1) {
        // 64x64 -> 32x32 box filter.
        for (let y = 0; y < 32; y = y + 1) {
            for (let x = 0; x < 32; x = x + 1) {
                let a = tex[(y * 2) * 64 + x * 2];
                let b = tex[(y * 2) * 64 + x * 2 + 1];
                let c = tex[(y * 2 + 1) * 64 + x * 2];
                let d = tex[(y * 2 + 1) * 64 + x * 2 + 1];
                let m = (a + b + c + d) * 0.25;
                // Gamma-ish correction with clamp.
                if (m > 1.0) { m = 1.0; }
                if (m < 0.0) { m = 0.0; }
                mip[y * 32 + x] = m * m;
            }
        }
        // 32x32 -> 16x16.
        for (let y = 0; y < 16; y = y + 1) {
            for (let x = 0; x < 16; x = x + 1) {
                let a = mip[(y * 2) * 32 + x * 2];
                let b = mip[(y * 2) * 32 + x * 2 + 1];
                let c = mip[(y * 2 + 1) * 32 + x * 2];
                let d = mip[(y * 2 + 1) * 32 + x * 2 + 1];
                mip2[y * 16 + x] = (a + b + c + d) * 0.25;
            }
        }
        let h = 0;
        for (let q = 0; q < 256; q = q + 1) { h = (h * 31 + f2i(mip2[q] * 10000.0)) % 1000003; }
        sum = sum + h;
        tex[rep * 300 % 4096] = tex[rep * 300 % 4096] * 0.5 + 0.1;
    }
    return sum;
}
"#
);

/// All integer/multimedia benchmarks.
pub fn all() -> Vec<Benchmark> {
    use Category::IntMedia;
    vec![
        Benchmark {
            name: "codrle4",
            suite: "Misc",
            description: "RLE type 4 encoder",
            category: IntMedia,
            source: CODRLE4,
        },
        Benchmark {
            name: "decodrle4",
            suite: "Misc",
            description: "RLE type 4 decoder",
            category: IntMedia,
            source: DECODRLE4,
        },
        Benchmark {
            name: "huff_enc",
            suite: "Misc",
            description: "Huffman encoder",
            category: IntMedia,
            source: HUFF_ENC,
        },
        Benchmark {
            name: "huff_dec",
            suite: "Misc",
            description: "Huffman decoder",
            category: IntMedia,
            source: HUFF_DEC,
        },
        Benchmark {
            name: "djpeg",
            suite: "Mediabench",
            description: "Lossy still image decompressor",
            category: IntMedia,
            source: DJPEG,
        },
        Benchmark {
            name: "g721encode",
            suite: "Mediabench",
            description: "CCITT voice compressor",
            category: IntMedia,
            source: G721ENCODE,
        },
        Benchmark {
            name: "g721decode",
            suite: "Mediabench",
            description: "CCITT voice decompressor",
            category: IntMedia,
            source: G721DECODE,
        },
        Benchmark {
            name: "mpeg2dec",
            suite: "Mediabench",
            description: "Lossy video decompressor",
            category: IntMedia,
            source: MPEG2DEC,
        },
        Benchmark {
            name: "rasta",
            suite: "Mediabench",
            description: "Speech recognition application",
            category: IntMedia,
            source: RASTA,
        },
        Benchmark {
            name: "rawcaudio",
            suite: "Mediabench",
            description: "ADPCM audio encoder",
            category: IntMedia,
            source: RAWCAUDIO,
        },
        Benchmark {
            name: "rawdaudio",
            suite: "Mediabench",
            description: "ADPCM audio decoder",
            category: IntMedia,
            source: RAWDAUDIO,
        },
        Benchmark {
            name: "toast",
            suite: "Mediabench",
            description: "Speech transcoder (GSM)",
            category: IntMedia,
            source: TOAST,
        },
        Benchmark {
            name: "unepic",
            suite: "Mediabench",
            description: "Experimental image decompressor",
            category: IntMedia,
            source: UNEPIC,
        },
        Benchmark {
            name: "085.cc1",
            suite: "SPEC92",
            description: "gcc C compiler (tokenizer core)",
            category: IntMedia,
            source: CC1,
        },
        Benchmark {
            name: "023.eqntott",
            suite: "SPEC92",
            description: "PLA truth-table minimizer",
            category: IntMedia,
            source: EQNTOTT,
        },
        Benchmark {
            name: "129.compress",
            suite: "SPEC95",
            description: "In-memory LZW compressor",
            category: IntMedia,
            source: COMPRESS,
        },
        Benchmark {
            name: "132.ijpeg",
            suite: "SPEC95",
            description: "JPEG compressor",
            category: IntMedia,
            source: IJPEG,
        },
        Benchmark {
            name: "130.li",
            suite: "SPEC95",
            description: "Lisp interpreter (bytecode core)",
            category: IntMedia,
            source: LI,
        },
        Benchmark {
            name: "124.m88ksim",
            suite: "SPEC95",
            description: "Processor simulator",
            category: IntMedia,
            source: M88KSIM,
        },
        Benchmark {
            name: "147.vortex",
            suite: "SPEC95",
            description: "Object-oriented database",
            category: IntMedia,
            source: VORTEX,
        },
        Benchmark {
            name: "osdemo",
            suite: "Mediabench",
            description: "3-D graphics library demo",
            category: IntMedia,
            source: OSDEMO,
        },
        Benchmark {
            name: "mipmap",
            suite: "Mediabench",
            description: "Texture mipmap generation",
            category: IntMedia,
            source: MIPMAP,
        },
    ]
}
