#![warn(missing_docs)]
//! # metaopt-suite
//!
//! The benchmark suite for the *Meta Optimization* (PLDI 2003) reproduction:
//! MiniC kernels that stand in for the paper's Table 5 programs (Mediabench,
//! SPEC92/95 integer, SPECfp 92/95/2000). Each kernel mimics the control-flow
//! and memory character of its namesake — codecs with data-dependent
//! branches, compressors with hash-table probing, interpreters with dispatch
//! loops, FP stencils with streaming array accesses — at a size the cycle
//! simulator can evaluate thousands of times during a GP run.
//!
//! Every benchmark is **self-contained**: it generates its own input data
//! from a single `dataseed` global that the harness varies to produce the
//! paper's *train* vs *novel* data sets, then computes a checksum so runs can
//! be differentially verified between the interpreter and the simulator.

pub mod fp;
pub mod int;

use metaopt_ir::Program;
use metaopt_lang::compile;
use std::fmt;

/// Failure loading a bundled benchmark.
///
/// These indicate a bug in this crate's bundled sources (or a caller
/// passing mismatched programs), but downstream evaluation pipelines treat
/// benchmark loading as fallible so a single bad benchmark cannot abort a
/// multi-day GP run.
#[derive(Clone, Debug, PartialEq)]
pub enum SuiteError {
    /// The benchmark's MiniC source failed to compile.
    Compile {
        /// Benchmark name.
        bench: &'static str,
        /// Compiler diagnostic.
        message: String,
    },
    /// The benchmark program lacks the mandatory `dataseed` global.
    MissingDataseed {
        /// Benchmark name.
        bench: &'static str,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Compile { bench, message } => {
                write!(f, "benchmark {bench} failed to compile: {message}")
            }
            SuiteError::MissingDataseed { bench } => {
                write!(f, "benchmark {bench} lacks a dataseed global")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// Which input data a run uses (paper §5.4: "train data set" vs "novel data
/// set").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataSet {
    /// The data the priority function was trained on.
    Train,
    /// Unseen data (cross-validation of data sensitivity).
    Novel,
}

impl DataSet {
    /// The `dataseed` value for this data set.
    pub fn seed(self) -> i64 {
        match self {
            DataSet::Train => 0x5EED_0001,
            DataSet::Novel => 0x0BAD_CAFE,
        }
    }
}

/// Benchmark category, mirroring the paper's suite split.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Integer / multimedia programs (hyperblock & regalloc studies).
    IntMedia,
    /// Floating-point programs (prefetching study).
    Fp,
}

/// A suite benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Paper benchmark name (e.g. `rawcaudio`, `101.tomcatv`).
    pub name: &'static str,
    /// Originating suite (paper Table 5).
    pub suite: &'static str,
    /// One-line description (paper Table 5).
    pub description: &'static str,
    /// Category.
    pub category: Category,
    /// MiniC source.
    pub source: &'static str,
}

impl Benchmark {
    /// Compile the benchmark's MiniC source, with the benchmark's name
    /// attached to any compiler diagnostic.
    ///
    /// # Errors
    /// [`SuiteError::Compile`] if the bundled source fails to compile — a
    /// bug in this crate, covered by tests.
    pub fn try_program(&self) -> Result<Program, SuiteError> {
        compile(self.source).map_err(|e| SuiteError::Compile {
            bench: self.name,
            message: e.to_string(),
        })
    }

    /// Initial memory for `prog` with the given data set's seed installed.
    ///
    /// # Errors
    /// [`SuiteError::MissingDataseed`] if the program lacks the mandatory
    /// `dataseed` global.
    pub fn try_memory(&self, prog: &Program, ds: DataSet) -> Result<Vec<u8>, SuiteError> {
        let mut mem = prog.initial_memory();
        let addr = prog
            .global_addr("dataseed")
            .ok_or(SuiteError::MissingDataseed { bench: self.name })? as usize;
        mem[addr..addr + 8].copy_from_slice(&ds.seed().to_le_bytes());
        Ok(mem)
    }

    /// Panicking convenience wrapper over [`Benchmark::try_program`] for
    /// tests, examples, and benches; production evaluation paths use the
    /// fallible form.
    ///
    /// # Panics
    /// Panics if the bundled source fails to compile.
    pub fn program(&self) -> Program {
        self.try_program().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking convenience wrapper over [`Benchmark::try_memory`] for
    /// tests, examples, and benches; production evaluation paths use the
    /// fallible form.
    ///
    /// # Panics
    /// Panics if the program lacks the mandatory `dataseed` global.
    pub fn memory(&self, prog: &Program, ds: DataSet) -> Vec<u8> {
        self.try_memory(prog, ds).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// All integer/multimedia benchmarks (hyperblock & register-allocation
/// studies).
pub fn int_benchmarks() -> Vec<Benchmark> {
    int::all()
}

/// All floating-point benchmarks (prefetching study).
pub fn fp_benchmarks() -> Vec<Benchmark> {
    fp::all()
}

/// Every benchmark in the suite.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = int_benchmarks();
    v.extend(fp_benchmarks());
    v
}

/// Look up a benchmark by its paper name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The paper's hyperblock training set (Fig. 6) — mostly Mediabench, which
/// "compiles and runs faster than the Spec benchmarks".
pub fn hyperblock_training_set() -> Vec<Benchmark> {
    [
        "decodrle4",
        "codrle4",
        "g721decode",
        "g721encode",
        "rawdaudio",
        "rawcaudio",
        "toast",
        "mpeg2dec",
        "124.m88ksim",
        "129.compress",
        "huff_enc",
        "huff_dec",
    ]
    .iter()
    .map(|n| by_name(n).expect("training benchmark registered"))
    .collect()
}

/// The paper's hyperblock cross-validation test set (Fig. 7).
pub fn hyperblock_test_set() -> Vec<Benchmark> {
    [
        "unepic",
        "djpeg",
        "rasta",
        "023.eqntott",
        "132.ijpeg",
        "147.vortex",
        "085.cc1",
        "130.li",
        "osdemo",
        "mipmap",
    ]
    .iter()
    .map(|n| by_name(n).expect("test benchmark registered"))
    .collect()
}

/// The paper's register-allocation training set (Fig. 11; smaller because
/// of the 32-register target).
pub fn regalloc_training_set() -> Vec<Benchmark> {
    [
        "129.compress",
        "g721decode",
        "g721encode",
        "huff_enc",
        "huff_dec",
        "rawcaudio",
        "rawdaudio",
        "mpeg2dec",
    ]
    .iter()
    .map(|n| by_name(n).expect("regalloc training benchmark registered"))
    .collect()
}

/// The paper's register-allocation cross-validation set (Fig. 12).
pub fn regalloc_test_set() -> Vec<Benchmark> {
    [
        "decodrle4",
        "codrle4",
        "124.m88ksim",
        "unepic",
        "djpeg",
        "023.eqntott",
        "132.ijpeg",
        "147.vortex",
        "085.cc1",
        "130.li",
    ]
    .iter()
    .map(|n| by_name(n).expect("regalloc test benchmark registered"))
    .collect()
}

/// The paper's prefetching training set (Fig. 15: SPEC92/95 FP).
pub fn prefetch_training_set() -> Vec<Benchmark> {
    [
        "101.tomcatv",
        "102.swim",
        "103.su2cor",
        "125.turb3d",
        "146.wave5",
        "093.nasa7",
        "015.doduc",
        "034.mdljdp2",
        "107.mgrid",
        "141.apsi",
    ]
    .iter()
    .map(|n| by_name(n).expect("prefetch training benchmark registered"))
    .collect()
}

/// The paper's prefetching cross-validation set (Fig. 16: SPEC2000 FP).
pub fn prefetch_test_set() -> Vec<Benchmark> {
    [
        "168.wupwise",
        "171.swim",
        "172.mgrid",
        "173.applu",
        "183.equake",
        "188.ammp",
        "189.lucas",
        "301.apsi",
    ]
    .iter()
    .map(|n| by_name(n).expect("prefetch test benchmark registered"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_ir::budget::{KERNEL_STEP_CEILING, KERNEL_VERIFY_MAX_STEPS};
    use metaopt_ir::interp::{run, RunConfig};

    #[test]
    fn all_benchmarks_compile_and_run_on_both_datasets() {
        for b in all_benchmarks() {
            let prog = b.program();
            for ds in [DataSet::Train, DataSet::Novel] {
                let cfg = RunConfig {
                    memory: Some(b.memory(&prog, ds)),
                    max_steps: KERNEL_VERIFY_MAX_STEPS,
                    ..Default::default()
                };
                let out =
                    run(&prog, &cfg).unwrap_or_else(|e| panic!("{} failed on {ds:?}: {e}", b.name));
                assert!(
                    out.steps > 1_000,
                    "{} too trivial: {} steps",
                    b.name,
                    out.steps
                );
                assert!(
                    out.steps < KERNEL_STEP_CEILING,
                    "{} too long for GP evaluation: {} steps",
                    b.name,
                    out.steps
                );
            }
        }
    }

    #[test]
    fn datasets_differ_and_are_deterministic() {
        for b in all_benchmarks() {
            let prog = b.program();
            let run_ds = |ds| {
                let cfg = RunConfig {
                    memory: Some(b.memory(&prog, ds)),
                    max_steps: KERNEL_VERIFY_MAX_STEPS,
                    ..Default::default()
                };
                run(&prog, &cfg).unwrap().ret
            };
            let t1 = run_ds(DataSet::Train);
            let t2 = run_ds(DataSet::Train);
            let n1 = run_ds(DataSet::Novel);
            assert_eq!(t1, t2, "{} must be deterministic", b.name);
            assert_ne!(t1, n1, "{} train and novel data must differ", b.name);
        }
    }

    #[test]
    fn registry_covers_paper_sets_without_overlap() {
        assert!(all_benchmarks().len() >= 30);
        let train = hyperblock_training_set();
        let test = hyperblock_test_set();
        for t in &test {
            assert!(
                train.iter().all(|b| b.name != t.name),
                "{} appears in both hyperblock sets",
                t.name
            );
        }
        let ptrain = prefetch_training_set();
        let ptest = prefetch_test_set();
        for t in &ptest {
            assert!(ptrain.iter().all(|b| b.name != t.name));
        }
        // Names unique.
        let mut names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate benchmark names");
    }

    #[test]
    fn loading_errors_carry_benchmark_names() {
        let broken = Benchmark {
            name: "synthetic-broken",
            suite: "test",
            description: "deliberately malformed source",
            category: Category::IntMedia,
            source: "fn main( { this is not MiniC",
        };
        match broken.try_program() {
            Err(SuiteError::Compile { bench, message }) => {
                assert_eq!(bench, "synthetic-broken");
                assert!(!message.is_empty());
            }
            other => panic!("expected Compile error, got {other:?}"),
        }

        // A valid program without a dataseed global: memory loading fails
        // with the benchmark named.
        let no_seed = Benchmark {
            name: "synthetic-no-dataseed",
            suite: "test",
            description: "valid program, no dataseed",
            category: Category::IntMedia,
            source: "global int x;\nfn main() -> int { return x; }",
        };
        let prog = no_seed.try_program().expect("source is valid");
        match no_seed.try_memory(&prog, DataSet::Train) {
            Err(SuiteError::MissingDataseed { bench }) => {
                assert_eq!(bench, "synthetic-no-dataseed")
            }
            other => panic!("expected MissingDataseed, got {other:?}"),
        }
    }

    #[test]
    fn categories_are_consistent() {
        for b in prefetch_training_set().iter().chain(&prefetch_test_set()) {
            assert_eq!(b.category, Category::Fp, "{}", b.name);
        }
        for b in hyperblock_training_set()
            .iter()
            .chain(&hyperblock_test_set())
        {
            assert_eq!(b.category, Category::IntMedia, "{}", b.name);
        }
    }
}
