//! Validate `run-trace.v1` JSONL files from the command line.
//!
//! Usage: `trace-validate [--strip] <trace.jsonl>...` — exits non-zero if
//! any file fails schema validation, printing the offending line number and
//! reason. With `--strip`, each validated line is re-emitted on stdout with
//! its timing keys removed (`metaopt_trace::strip_timing`), which gives CI a
//! canonical form for diffing two traces of the same run — e.g. the
//! cross-tier smoke, where wall-clock attributes are the only sanctioned
//! nondeterminism.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut strip = false;
    let paths: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--strip" {
                strip = true;
                false
            } else {
                true
            }
        })
        .collect();
    if paths.is_empty() {
        eprintln!("usage: trace-validate [--strip] <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: cannot read: {err}");
                failed = true;
                continue;
            }
        };
        match metaopt_trace::schema::validate_trace(&text) {
            Ok(summary) => {
                if strip {
                    for line in text.lines().filter(|l| !l.trim().is_empty()) {
                        match metaopt_trace::strip_timing(line) {
                            Ok(stripped) => println!("{stripped}"),
                            Err(err) => {
                                eprintln!("{path}: cannot strip: {err:?}");
                                failed = true;
                                break;
                            }
                        }
                    }
                } else {
                    let by_type: Vec<String> = summary
                        .by_type
                        .iter()
                        .map(|(ty, n)| format!("{ty} x{n}"))
                        .collect();
                    println!(
                        "{path}: OK ({} events: {})",
                        summary.events,
                        by_type.join(", ")
                    );
                }
            }
            Err(err) => {
                eprintln!("{path}: INVALID at line {}: {}", err.line, err.message);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
