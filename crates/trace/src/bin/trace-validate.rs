//! Validate `run-trace.v1` JSONL files from the command line.
//!
//! Usage: `trace-validate <trace.jsonl>...` — exits non-zero if any file
//! fails schema validation, printing the offending line number and reason.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-validate <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: cannot read: {err}");
                failed = true;
                continue;
            }
        };
        match metaopt_trace::schema::validate_trace(&text) {
            Ok(summary) => {
                let by_type: Vec<String> = summary
                    .by_type
                    .iter()
                    .map(|(ty, n)| format!("{ty} x{n}"))
                    .collect();
                println!(
                    "{path}: OK ({} events: {})",
                    summary.events,
                    by_type.join(", ")
                );
            }
            Err(err) => {
                eprintln!("{path}: INVALID at line {}: {}", err.line, err.message);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
