//! A minimal JSON value model, writer, and parser.
//!
//! The build environment has no registry access, so the trace layer carries
//! its own (small, strict) JSON implementation instead of serde. Two
//! properties matter for the trace format and are guaranteed here:
//!
//! * **Deterministic serialization** — object keys keep insertion order and
//!   numbers format identically across runs, so event payloads are
//!   byte-reproducible for a fixed configuration.
//! * **Integer fidelity** — counters are `u64` end to end. The parser keeps
//!   unsigned decimal literals as [`Value::UInt`] (no `f64` round-trip), so
//!   schema validation can demand exact integer fields.

use std::fmt;

/// A JSON value. Objects preserve insertion order (serialization is
/// deterministic), and unsigned integers are kept distinct from floats.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer literal (counters, timestamps, indices).
    UInt(u64),
    /// Any other number. Non-finite values serialize as `null` (JSON has no
    /// NaN/Inf), so writers never produce invalid output.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value under `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an `f64` (accepts both number forms).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Num(x) if x.is_finite() => write!(f, "{x}"),
            Value::Num(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse failure: byte offset and description.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document from `text` (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // reject rather than decode pairs.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape in string")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Keep unsigned decimal literals exact.
        if integral_end == self.pos && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number literal {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(42)),
            ("b".into(), Value::Num(1.5)),
            ("c".into(), Value::str("x\"\\\n\ty")),
            ("d".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("e".into(), Value::Obj(vec![("n".into(), Value::UInt(0))])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        // Floats that print without a fraction parse back as UInt — the
        // schema's Num kind accepts both, so nothing is lost.
        assert_eq!(Value::Num(1.0).to_string(), "1");
        assert_eq!(parse("1").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn key_order_is_preserved() {
        let text = r#"{"z":1,"a":2}"#;
        assert_eq!(parse(text).unwrap().to_string(), text);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"1}", "nulls", "1 2", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        // `\u00e9` escape and a literal non-ASCII char both decode.
        assert_eq!(parse("\"\\u00e9A\"").unwrap(), Value::str("\u{e9}A"));
        assert_eq!(parse("\"\u{e9}\"").unwrap(), Value::str("\u{e9}"));
    }
}
