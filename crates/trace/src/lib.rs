#![warn(missing_docs)]
//! # metaopt-trace
//!
//! Structured run telemetry for the Meta Optimization system: a
//! lightweight, zero-dependency event layer (spans + counters) that the GP
//! engine, the experiment drivers, the compiler pass manager, and the
//! simulator all emit into.
//!
//! Events stream to a versioned JSONL format, **`run-trace.v1`**
//! ([`SCHEMA_VERSION`]): one JSON object per line, each carrying a `type`,
//! a monotonic `ts` (nanoseconds since trace start), and type-specific
//! attributes. The taxonomy (enforced by [`schema`]):
//!
//! | type              | emitted by        | one per                              |
//! |-------------------|-------------------|--------------------------------------|
//! | `trace-header`    | [`Tracer`] itself | trace (always the first line)        |
//! | `run-start`/`run-end` | `metaopt` CLI | process                              |
//! | `evolution-start`/`evolution-end` | GP engine | evolution run              |
//! | `generation`      | GP engine         | generation (subset, cache counters)  |
//! | `eval`            | GP engine         | uncached `(genome, case)` evaluation |
//! | `pass`            | pass manager      | executed compiler pass               |
//! | `sim`             | simulator         | completed simulation                 |
//! | `validate`        | pass manager      | semantic validation of one pass      |
//! | `checkpoint`      | GP engine         | checkpoint write                     |
//! | `metrics-snapshot` | GP engine        | generation (live [`metrics`] dump)   |
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** A disabled [`Tracer`] is a `None`; every emission
//!    site is a branch on [`Tracer::enabled`] and no clock is read, so runs
//!    without `--trace-out` are bit-identical to runs built before tracing
//!    existed.
//! 2. **Deterministic payloads.** For a fixed configuration, every event's
//!    payload (everything except the timing fields `ts`, `dur_ns`,
//!    `wall_ns`) is reproducible across runs; with one worker thread the
//!    full event *sequence* is reproducible too, which is what the golden
//!    trace test pins. [`strip_timing`] produces that canonical form.
//! 3. **Thread-safe.** Worker threads share one sink; each event is
//!    serialized to a line off-lock and appended under a mutex, so lines
//!    never interleave.

pub mod json;
pub mod live;
pub mod metrics;
pub mod report;
pub mod schema;
pub mod serve;

use json::Value;
use metrics::MetricsRegistry;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The trace schema version this crate writes and validates.
pub const SCHEMA_VERSION: &str = "run-trace.v1";

enum SinkKind {
    Writer(Box<dyn Write + Send>),
    Memory(Vec<String>),
}

struct Inner {
    start: Instant,
    sink: Mutex<SinkKind>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Ok(mut sink) = self.sink.lock() {
            if let SinkKind::Writer(w) = &mut *sink {
                let _ = w.flush();
            }
        }
    }
}

/// A cheap, cloneable handle onto a shared trace sink.
///
/// Disabled by default ([`Tracer::disabled`] / `Tracer::default()`): all
/// emission methods return immediately without reading a clock or taking a
/// lock. Enabled tracers ([`Tracer::to_file`], [`Tracer::in_memory`]) write
/// the `trace-header` event on creation, stamp every event with a monotonic
/// timestamp, and append scope attributes (see [`Tracer::scoped`]) to each
/// payload.
///
/// A tracer can additionally carry a live [`MetricsRegistry`]
/// ([`Tracer::with_metrics`]); instrumentation sites fetch it via
/// [`Tracer::metrics`]. The registry rides along independently of the event
/// sink — `--metrics-addr` without `--trace-out` yields a sink-disabled
/// tracer that still aggregates metrics.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    scope: Vec<(&'static str, Value)>,
    metrics: Option<MetricsRegistry>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            write!(f, "Tracer(enabled)")
        } else {
            write!(f, "Tracer(disabled)")
        }
    }
}

impl Tracer {
    /// The no-op tracer: emissions cost one branch.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    fn from_sink(sink: SinkKind) -> Tracer {
        let t = Tracer {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                sink: Mutex::new(sink),
            })),
            scope: Vec::new(),
            metrics: None,
        };
        t.emit(
            "trace-header",
            [
                ("schema", Value::str(SCHEMA_VERSION)),
                ("producer", Value::str("metaopt")),
            ],
        );
        t
    }

    /// A tracer streaming JSONL to `path` (truncating any existing file).
    ///
    /// # Errors
    /// Fails when the file cannot be created.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Tracer> {
        let file = File::create(path)?;
        Ok(Tracer::from_sink(SinkKind::Writer(Box::new(
            BufWriter::new(file),
        ))))
    }

    /// A tracer collecting lines in memory, for tests ([`Tracer::lines`]).
    pub fn in_memory() -> Tracer {
        Tracer::from_sink(SinkKind::Memory(Vec::new()))
    }

    /// Whether events are being recorded. Emission sites gate any
    /// attribute-building work on this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The same tracer carrying `registry` for live metrics aggregation.
    /// Works on sink-disabled tracers too (metrics without a trace file).
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Tracer {
        self.metrics = Some(registry);
        self
    }

    /// The live metrics registry, when one is attached. Instrumentation
    /// sites gate recording work on this returning `Some`.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// A handle onto the same sink that appends `attrs` to every event it
    /// emits (after the event's own attributes). Used to stamp ambient
    /// context — e.g. the benchmark name — onto `pass`/`sim` events emitted
    /// deep inside the compiler without threading it through every call.
    pub fn scoped<I>(&self, attrs: I) -> Tracer
    where
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        if self.inner.is_none() {
            // Sink stays disabled, but an attached metrics registry rides
            // along so scoped call sites keep aggregating.
            let mut t = Tracer::disabled();
            t.metrics = self.metrics.clone();
            return t;
        }
        let mut scope = self.scope.clone();
        scope.extend(attrs);
        Tracer {
            inner: self.inner.clone(),
            scope,
            metrics: self.metrics.clone(),
        }
    }

    /// Start timing a span; free (no clock read) when the tracer is
    /// disabled and no metrics registry is attached. With metrics attached
    /// the span times even without a sink, so latency histograms fill under
    /// `--metrics-addr` alone.
    pub fn begin(&self) -> Span {
        let timed = self.inner.is_some() || self.metrics.is_some();
        Span {
            start: timed.then(Instant::now),
        }
    }

    /// Emit one event: `{"type": kind, "ts": ..., <attrs>, <scope>}` as a
    /// single JSONL line. No-op when disabled.
    pub fn emit<I>(&self, kind: &str, attrs: I)
    where
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        let Some(inner) = &self.inner else { return };
        let ts = inner.start.elapsed().as_nanos() as u64;
        let mut fields: Vec<(String, Value)> = vec![
            ("type".to_string(), Value::str(kind)),
            ("ts".to_string(), Value::UInt(ts)),
        ];
        fields.extend(attrs.into_iter().map(|(k, v)| (k.to_string(), v)));
        fields.extend(self.scope.iter().map(|(k, v)| (k.to_string(), v.clone())));
        let line = Value::Obj(fields).to_string();
        let mut sink = inner.sink.lock().unwrap();
        match &mut *sink {
            SinkKind::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
            SinkKind::Memory(lines) => lines.push(line),
        }
    }

    /// Flush buffered output to the underlying file (no-op for disabled and
    /// in-memory tracers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let SinkKind::Writer(w) = &mut *inner.sink.lock().unwrap() {
                let _ = w.flush();
            }
        }
    }

    /// The lines collected so far by an [`Tracer::in_memory`] tracer;
    /// `None` for file-backed or disabled tracers.
    pub fn lines(&self) -> Option<Vec<String>> {
        let inner = self.inner.as_ref()?;
        match &*inner.sink.lock().unwrap() {
            SinkKind::Memory(lines) => Some(lines.clone()),
            SinkKind::Writer(_) => None,
        }
    }
}

/// An in-flight span timer from [`Tracer::begin`]. Reports elapsed
/// nanoseconds; 0 when the tracer was disabled (the corresponding `emit` is
/// a no-op anyway).
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    /// Nanoseconds since [`Tracer::begin`].
    pub fn dur_ns(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }
}

/// The attribute keys that vary run to run and are therefore stripped from
/// the canonical payload: the timing fields, plus `runtime` — the live
/// registry dump on `metrics-snapshot` events, whose latency histograms and
/// scheduling gauges are wall-clock- and schedule-dependent (the snapshot's
/// `counters` object is the deterministic part). Everything else in a
/// `run-trace.v1` payload is deterministic for a fixed configuration.
pub const TIMING_KEYS: [&str; 4] = ["ts", "dur_ns", "wall_ns", "runtime"];

/// One trace line with its timing fields ([`TIMING_KEYS`]) removed — the
/// canonical deterministic payload the golden test pins.
///
/// # Errors
/// Fails when the line is not valid JSON.
pub fn strip_timing(line: &str) -> Result<String, json::ParseError> {
    fn strip(v: Value) -> Value {
        match v {
            Value::Obj(fields) => Value::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| !TIMING_KEYS.contains(&k.as_str()))
                    .map(|(k, v)| (k, strip(v)))
                    .collect(),
            ),
            Value::Arr(items) => Value::Arr(items.into_iter().map(strip).collect()),
            other => other,
        }
    }
    Ok(strip(json::parse(line)?).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit("generation", [("gen", Value::UInt(0))]);
        assert_eq!(t.lines(), None);
        assert_eq!(t.begin().dur_ns(), 0);
        // Scoping a disabled tracer stays disabled.
        assert!(!t.scoped([("bench", Value::str("x"))]).enabled());
    }

    #[test]
    fn metrics_ride_along_without_a_sink() {
        let t = Tracer::disabled().with_metrics(MetricsRegistry::new());
        assert!(!t.enabled());
        assert!(t.metrics().is_some());
        // Scoping preserves the registry (same shared storage) even though
        // the sink stays disabled.
        let scoped = t.scoped([("bench", Value::str("x"))]);
        assert!(!scoped.enabled());
        scoped.metrics().unwrap().counter("x").inc();
        assert_eq!(t.metrics().unwrap().counter("x").get(), 1);
        // Spans time when metrics are attached, so histograms fill without
        // a trace file. (A zero reading is technically possible on a coarse
        // clock, but the Instant is real; just assert emit stays a no-op.)
        t.emit("generation", [("gen", Value::UInt(0))]);
        assert_eq!(t.lines(), None);
    }

    #[test]
    fn strip_timing_removes_snapshot_runtime() {
        let line = r#"{"type":"metrics-snapshot","ts":5,"seq":0,"gen":1,"counters":{"evaluations":3},"runtime":{"metaopt_eval_latency_ns":{"count":3,"sum":99,"buckets":[[5,3]]}}}"#;
        assert_eq!(
            strip_timing(line).unwrap(),
            r#"{"type":"metrics-snapshot","seq":0,"gen":1,"counters":{"evaluations":3}}"#
        );
    }

    #[test]
    fn memory_tracer_starts_with_the_header() {
        let t = Tracer::in_memory();
        t.emit("run-start", [("command", Value::str("test"))]);
        let lines = t.lines().unwrap();
        assert_eq!(lines.len(), 2);
        let header = json::parse(&lines[0]).unwrap();
        assert_eq!(header.get("type").unwrap().as_str(), Some("trace-header"));
        assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA_VERSION));
        assert!(header.get("ts").unwrap().as_u64().is_some());
    }

    #[test]
    fn scope_attributes_ride_along() {
        let t = Tracer::in_memory();
        let scoped = t.scoped([("bench", Value::str("unepic"))]);
        scoped.emit("pass", [("pass", Value::str("regalloc"))]);
        let lines = t.lines().unwrap();
        let ev = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(ev.get("pass").unwrap().as_str(), Some("regalloc"));
        assert_eq!(ev.get("bench").unwrap().as_str(), Some("unepic"));
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::in_memory();
        let u = t.clone();
        u.emit("run-start", [("command", Value::str("x"))]);
        assert_eq!(t.lines().unwrap().len(), 2);
    }

    #[test]
    fn strip_timing_removes_only_timing_keys() {
        let line = r#"{"type":"eval","ts":123,"genome":"(x)","dur_ns":9,"score":1.5}"#;
        assert_eq!(
            strip_timing(line).unwrap(),
            r#"{"type":"eval","genome":"(x)","score":1.5}"#
        );
    }

    #[test]
    fn file_tracer_writes_lines() {
        let path = std::env::temp_dir().join(format!("metaopt-trace-{}.jsonl", std::process::id()));
        {
            let t = Tracer::to_file(&path).unwrap();
            t.emit("run-start", [("command", Value::str("smoke"))]);
            t.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
