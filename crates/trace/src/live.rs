//! The state machine behind `metaopt top`: incrementally digest a
//! (possibly still-growing) `run-trace.v1` JSONL stream and render a
//! compact live status view.
//!
//! [`LiveStatus::push_line`] is tolerant by design — a tail of a running
//! trace can hand it a torn final line or content written by a newer
//! producer, and it simply ignores what it cannot parse. Rendering pulls
//! throughput from `generation` events and latency/utilization from the
//! `runtime` dump of the latest `metrics-snapshot` event (when the run has
//! metrics enabled; without them the view degrades to event-derived rows).

use crate::json::{self, Value};
use crate::metrics::quantile_from_buckets;

/// One digested `generation` event.
#[derive(Clone, Debug)]
struct GenRow {
    gen: u64,
    evals: u64,
    cache_hits: u64,
    best: f64,
    mean: f64,
    dur_ns: u64,
}

/// A histogram deserialized from a snapshot `runtime` dump.
#[derive(Clone, Debug, Default)]
struct HistDump {
    count: u64,
    buckets: Vec<(usize, u64)>,
}

impl HistDump {
    fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        quantile_from_buckets(&self.buckets, q_num, q_den)
    }
}

/// The latest `metrics-snapshot`, split into its deterministic counters and
/// the runtime registry dump.
#[derive(Clone, Debug, Default)]
struct Snapshot {
    seq: u64,
    counters: Vec<(String, u64)>,
    scalars: Vec<(String, u64)>,
    hists: Vec<(String, HistDump)>,
}

impl Snapshot {
    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Sum of every member of a labeled scalar family, e.g. the per-shard
    /// queue depth gauges.
    fn scalar_family_sum(&self, family: &str) -> u64 {
        let prefix = format!("{family}{{");
        self.scalars
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    fn hist(&self, name: &str) -> Option<&HistDump> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }
}

/// Incremental digest of a live trace, rendering a terminal status view.
#[derive(Clone, Debug, Default)]
pub struct LiveStatus {
    command: Option<String>,
    population: u64,
    generations: u64,
    threads: u64,
    gens: Vec<GenRow>,
    snapshot: Option<Snapshot>,
    retries: u64,
    timeouts: u64,
    restarts: u64,
    quarantined_events: u64,
    finished: bool,
    events: u64,
}

/// How many recent generations the view tabulates.
const RECENT_GENS: usize = 5;

impl LiveStatus {
    /// A fresh digest with no events seen.
    pub fn new() -> LiveStatus {
        LiveStatus::default()
    }

    /// Total events digested so far (parse failures excluded).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether the producing process has written its `run-end` event — the
    /// signal for `--follow` to stop tailing.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Digest one JSONL line. Unparseable or torn lines are ignored — a
    /// live tail races the writer by design.
    pub fn push_line(&mut self, line: &str) {
        let Ok(v) = json::parse(line) else { return };
        let Some(ty) = v.get("type").and_then(Value::as_str) else {
            return;
        };
        let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        let f = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        self.events += 1;
        match ty {
            "run-start" => {
                self.command = v.get("command").and_then(Value::as_str).map(str::to_string);
            }
            "run-end" => self.finished = true,
            "evolution-start" => {
                self.population = u("population");
                self.generations = u("generations");
                self.threads = u("threads");
            }
            "generation" => {
                self.gens.push(GenRow {
                    gen: u("gen"),
                    evals: u("evals"),
                    cache_hits: u("cache_hits"),
                    best: f("best_fitness"),
                    mean: f("mean_fitness"),
                    dur_ns: u("dur_ns"),
                });
            }
            "eval"
                if v.get("outcome").and_then(Value::as_str)
                    != Some(crate::schema::OUTCOME_SCORE) =>
            {
                self.quarantined_events += 1;
            }
            "retry" => self.retries += 1,
            "timeout" => self.timeouts += 1,
            "worker-restart" => self.restarts += 1,
            "metrics-snapshot" => {
                let mut snap = Snapshot {
                    seq: u("seq"),
                    ..Snapshot::default()
                };
                if let Some(counters) = v.get("counters").and_then(Value::as_obj) {
                    for (k, c) in counters {
                        if let Some(n) = c.as_u64() {
                            snap.counters.push((k.clone(), n));
                        }
                    }
                }
                if let Some(runtime) = v.get("runtime").and_then(Value::as_obj) {
                    for (k, m) in runtime {
                        if let Some(n) = m.as_u64() {
                            snap.scalars.push((k.clone(), n));
                        } else if m.get("buckets").is_some() {
                            let mut hist = HistDump {
                                count: m.get("count").and_then(Value::as_u64).unwrap_or(0),
                                buckets: Vec::new(),
                            };
                            if let Some(pairs) = m.get("buckets").and_then(Value::as_arr) {
                                for pair in pairs {
                                    if let Some(p) = pair.as_arr() {
                                        if let (Some(i), Some(n)) = (
                                            p.first().and_then(Value::as_u64),
                                            p.get(1).and_then(Value::as_u64),
                                        ) {
                                            hist.buckets.push((i as usize, n));
                                        }
                                    }
                                }
                            }
                            snap.hists.push((k.clone(), hist));
                        }
                    }
                }
                self.snapshot = Some(snap);
            }
            _ => {}
        }
    }

    /// Render the current status as a multi-line terminal view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let command = self.command.as_deref().unwrap_or("(no run-start yet)");
        out.push_str(&format!("metaopt top · {command}\n"));
        let cur_gen = self.gens.last().map_or(0, |g| g.gen + 1);
        let seq = self
            .snapshot
            .as_ref()
            .map_or("-".to_string(), |s| s.seq.to_string());
        let state = if self.finished { "finished" } else { "running" };
        out.push_str(&format!(
            "gen {cur_gen}/{} · pop {} · threads {} · snapshot seq {seq} · {state}\n\n",
            self.generations, self.population, self.threads
        ));

        // Throughput from generation events (deterministic, always present
        // in a traced run).
        let evals: u64 = self.gens.iter().map(|g| g.evals).sum();
        let hits: u64 = self.gens.iter().map(|g| g.cache_hits).sum();
        let dur: u64 = self.gens.iter().map(|g| g.dur_ns).sum();
        let eps = if dur == 0 {
            0.0
        } else {
            evals as f64 / (dur as f64 / 1e9)
        };
        let hit_pct = if evals + hits == 0 {
            0.0
        } else {
            100.0 * hits as f64 / (evals + hits) as f64
        };
        let warm = self.snapshot.as_ref().map_or(0, |s| s.counter("warm_hits"));
        out.push_str(&format!(
            "evals {evals} ({eps:.1}/s) · cache hit {hit_pct:.1}% · warm {warm}\n"
        ));

        // Latency + utilization from the latest snapshot's runtime dump.
        if let Some(snap) = &self.snapshot {
            if let Some(h) = snap.hist("metaopt_eval_latency_ns") {
                out.push_str(&format!(
                    "eval latency p50 {} · p90 {} · p99 {} ({} samples)\n",
                    fmt_ns(h.quantile(50, 100)),
                    fmt_ns(h.quantile(90, 100)),
                    fmt_ns(h.quantile(99, 100)),
                    h.count,
                ));
            }
            if let Some(workers) = snap.scalar("metaopt_service_workers") {
                let busy = snap.scalar("metaopt_service_workers_busy").unwrap_or(0);
                out.push_str(&format!(
                    "workers {busy}/{workers} busy · queue {} · steals {} · restarts {}\n",
                    snap.scalar_family_sum("metaopt_service_queue_depth"),
                    snap.scalar("metaopt_service_steals_total").unwrap_or(0),
                    snap.scalar("metaopt_service_restarts_total").unwrap_or(0),
                ));
            }
            let sim_cycles = snap.scalar("metaopt_sim_cycles_total").unwrap_or(0);
            let sim_ns = snap.scalar("metaopt_sim_wall_ns_total").unwrap_or(0);
            if sim_cycles > 0 && sim_ns > 0 {
                let cps = sim_cycles as f64 / (sim_ns as f64 / 1e9);
                out.push_str(&format!("sim {} cycles/s\n", fmt_quantity(cps)));
            }
            out.push_str(&format!(
                "reliability: retries {} · timeouts {} · quarantined {}\n",
                snap.counter("retries").max(self.retries),
                self.timeouts,
                snap.counter("quarantined").max(self.quarantined_events),
            ));
        } else {
            out.push_str(&format!(
                "reliability: retries {} · timeouts {} · restarts {} · quarantined {}\n",
                self.retries, self.timeouts, self.restarts, self.quarantined_events
            ));
            out.push_str(
                "(no metrics-snapshot events yet — run with --trace-out to stream them)\n",
            );
        }

        // Recent generations table.
        if !self.gens.is_empty() {
            out.push_str(&format!(
                "\n{:>5} {:>7} {:>6} {:>10} {:>10} {:>8}\n",
                "gen", "evals", "hits", "best", "mean", "ms"
            ));
            let start = self.gens.len().saturating_sub(RECENT_GENS);
            for g in &self.gens[start..] {
                out.push_str(&format!(
                    "{:>5} {:>7} {:>6} {:>10.4} {:>10.4} {:>8.1}\n",
                    g.gen,
                    g.evals,
                    g.cache_hits,
                    g.best,
                    g.mean,
                    g.dur_ns as f64 / 1e6
                ));
            }
        }
        out
    }
}

/// Format nanoseconds human-readably (`1.8ms`, `412µs`, `2.1s`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}µs", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Format a rate human-readably (`8.3M`, `74.2`, `1.2G`).
fn fmt_quantity(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(status: &mut LiveStatus, lines: &[&str]) {
        for line in lines {
            status.push_line(line);
        }
    }

    #[test]
    fn digests_a_running_trace() {
        let mut s = LiveStatus::new();
        feed(
            &mut s,
            &[
                r#"{"type":"trace-header","ts":0,"schema":"run-trace.v1","producer":"metaopt"}"#,
                r#"{"type":"run-start","ts":1,"command":"specialize hyperblock unepic"}"#,
                r#"{"type":"evolution-start","ts":2,"population":16,"generations":12,"start_gen":0,"threads":2,"resumed":false}"#,
                r#"{"type":"generation","ts":3,"gen":0,"subset":[0],"evals":16,"cache_hits":4,"best_fitness":1.25,"mean_fitness":2.5,"best_size":3,"dur_ns":200000000}"#,
                r#"{"type":"metrics-snapshot","ts":4,"seq":0,"gen":0,"counters":{"evaluations":16,"cache_hits":4,"warm_hits":2,"quarantined":1},"runtime":{"metaopt_eval_latency_ns":{"count":16,"sum":160000000,"buckets":[[24,12],[25,4]]},"metaopt_service_workers":2,"metaopt_service_workers_busy":1,"metaopt_service_queue_depth{shard=\"0\"}":3,"metaopt_service_queue_depth{shard=\"1\"}":2,"metaopt_service_steals_total":7,"metaopt_service_restarts_total":0,"metaopt_sim_cycles_total":8000000,"metaopt_sim_wall_ns_total":1000000000}}"#,
            ],
        );
        assert!(!s.finished());
        let view = s.render();
        assert!(view.contains("specialize hyperblock unepic"), "{view}");
        assert!(view.contains("gen 1/12 · pop 16 · threads 2"), "{view}");
        assert!(view.contains("snapshot seq 0"), "{view}");
        assert!(view.contains("evals 16 (80.0/s)"), "{view}");
        assert!(view.contains("cache hit 20.0%"), "{view}");
        assert!(view.contains("warm 2"), "{view}");
        // p50 in bucket 24 (upper bound 16777215 ns ≈ 16.8ms), p99 bucket 25.
        assert!(view.contains("eval latency p50 16.8ms"), "{view}");
        assert!(view.contains("p99 33.6ms"), "{view}");
        assert!(
            view.contains("workers 1/2 busy · queue 5 · steals 7 · restarts 0"),
            "{view}"
        );
        assert!(view.contains("sim 8.0M cycles/s"), "{view}");
        assert!(view.contains("quarantined 1"), "{view}");

        // run-end flips the finished flag.
        s.push_line(r#"{"type":"run-end","ts":9,"command":"specialize","dur_ns":5}"#);
        assert!(s.finished());
        assert!(s.render().contains("finished"));
    }

    #[test]
    fn tolerates_torn_and_unknown_lines() {
        let mut s = LiveStatus::new();
        feed(
            &mut s,
            &[
                r#"{"type":"run-start","ts":1,"command":"x"}"#,
                r#"{"type":"generation","ts":2,"gen":0,"subset":[],"evals":1,"#, // torn
                "garbage",
                r#"{"type":"from-the-future","ts":3,"novel":true}"#,
                r#"{"no_type":1}"#,
            ],
        );
        // Only the parseable typed lines counted (unknown types are digested
        // as no-ops — forward compatibility); render stays sane.
        assert_eq!(s.events(), 2);
        let view = s.render();
        assert!(view.contains("metaopt top · x"), "{view}");
        assert!(view.contains("evals 0 (0.0/s)"), "{view}");
    }

    #[test]
    fn renders_without_snapshots() {
        let mut s = LiveStatus::new();
        s.push_line(r#"{"type":"retry","ts":1,"gen":0,"genome":"g","case":0,"attempt":1,"kind":"timeout","backoff_ns":5}"#);
        let view = s.render();
        assert!(view.contains("retries 1"), "{view}");
        assert!(view.contains("no metrics-snapshot events yet"), "{view}");
    }

    #[test]
    fn formats_are_human_scale() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(95_000), "95µs");
        assert_eq!(fmt_ns(1_800_000), "1.8ms");
        assert_eq!(fmt_ns(2_100_000_000), "2.1s");
        assert_eq!(fmt_quantity(74.25), "74.2");
        assert_eq!(fmt_quantity(8_300_000.0), "8.3M");
        assert_eq!(fmt_quantity(1_200_000_000.0), "1.2G");
    }
}
