//! Live run metrics: an in-process registry of atomic counters, gauges,
//! and fixed-boundary log₂-bucket histograms.
//!
//! Where the trace layer records *events* (what happened, in order), this
//! module maintains *aggregated state* (how much, how fast, right now) that
//! can be read while the run is in flight: by the per-generation
//! `metrics-snapshot` trace events, by `metaopt top`, and by the optional
//! Prometheus exposition endpoint ([`crate::serve`]).
//!
//! Design constraints, in order:
//!
//! 1. **Cheap enough to stay enabled.** Recording is a relaxed atomic add
//!    (plus, for histograms, a `leading_zeros`); no locks, no floats, no
//!    allocation on the hot path. Hot call sites cache their
//!    `Arc<Counter>`/`Arc<Histogram>` handles once; the registry mutex is
//!    touched only at registration and snapshot time.
//! 2. **Derived state only.** Nothing in the search reads a metric back;
//!    a run with metrics enabled is bit-identical to one without.
//! 3. **Integer-only quantiles.** Histograms bucket by bit length
//!    (`bucket i` holds values of `i` bits, i.e. `[2^(i-1), 2^i)`), so
//!    p50/p90/p99 are derived by an integer walk over at most
//!    [`HISTOGRAM_BUCKETS`] cumulative counts — no float math anywhere
//!    near the recording path.
//!
//! Snapshots ([`MetricsRegistry::snapshot_value`]) serialize every metric
//! in name-sorted order, so two registries holding the same values render
//! byte-identically regardless of registration interleaving.

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket `i` counts recorded values
/// whose bit length is `i` (bucket 0 counts zeros, bucket 64 the values
/// with the top bit set).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, busy workers,
/// current generation).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket index a value records into: its bit length.
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; `u64::MAX` for the
/// last). Quantiles report this bound, so they overestimate by at most 2x —
/// the price of float-free recording.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Derive the `q_num/q_den` quantile from `(bucket index, count)` pairs
/// (e.g. a deserialized snapshot): the upper bound of the bucket where the
/// cumulative count first reaches the target rank. Returns 0 for an empty
/// histogram. Integer math only.
pub fn quantile_from_buckets(pairs: &[(usize, u64)], q_num: u64, q_den: u64) -> u64 {
    let total: u64 = pairs.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    let rank = (total * q_num).div_ceil(q_den).max(1);
    let mut sorted: Vec<(usize, u64)> = pairs.to_vec();
    sorted.sort_by_key(|(i, _)| *i);
    let mut cum = 0u64;
    for (i, n) in sorted {
        cum += n;
        if cum >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(64)
}

/// A fixed-boundary log₂-bucket histogram. Recording is two relaxed atomic
/// adds and a `leading_zeros`; quantiles are integer walks over the bucket
/// counts.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q_num/q_den` quantile (e.g. `quantile(99, 100)` for p99) as a
    /// bucket upper bound; 0 when empty.
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        quantile_from_buckets(&self.nonzero_buckets(), q_num, q_den)
    }

    /// The non-empty `(bucket index, count)` pairs, in index order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    family: String,
    /// Optional `(label key, label value)` pair: `pass_wall_ns{pass="x"}`.
    label: Option<(String, String)>,
    metric: Metric,
}

impl Entry {
    /// The snapshot key: `family` or `family{key="value"}`.
    fn key(&self) -> String {
        match &self.label {
            None => self.family.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.family, k, v),
        }
    }
}

/// A cheap, cloneable handle onto a shared metrics registry. Metrics are
/// registered (or re-fetched) by name; handles are `Arc`s, so hot call
/// sites register once and record lock-free thereafter.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry({} metrics)",
            self.inner.lock().unwrap().len()
        )
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_register(
        &self,
        family: &str,
        label: Option<(&str, &str)>,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.inner.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| {
            e.family == family && e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        }) {
            return match &e.metric {
                Metric::Counter(c) => Metric::Counter(c.clone()),
                Metric::Gauge(g) => Metric::Gauge(g.clone()),
                Metric::Histogram(h) => Metric::Histogram(h.clone()),
            };
        }
        let metric = make();
        let clone = match &metric {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        };
        entries.push(Entry {
            family: family.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            metric,
        });
        clone
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_register(name, None, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_register(name, None, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_register(name, None, || {
            Metric::Histogram(Arc::new(Histogram::default()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Get or register one member of a labeled gauge family, e.g.
    /// `gauge_labeled("queue_depth", "shard", "3")`.
    ///
    /// # Panics
    /// Panics if the member is already registered as a different kind.
    pub fn gauge_labeled(&self, family: &str, key: &str, value: &str) -> Arc<Gauge> {
        match self.get_or_register(family, Some((key, value)), || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            other => panic!("metric {family:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register one member of a labeled histogram family, e.g.
    /// `histogram_labeled("pass_wall_ns", "pass", "regalloc")`.
    ///
    /// # Panics
    /// Panics if the member is already registered as a different kind.
    pub fn histogram_labeled(&self, family: &str, key: &str, value: &str) -> Arc<Histogram> {
        match self.get_or_register(family, Some((key, value)), || {
            Metric::Histogram(Arc::new(Histogram::default()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {family:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Serialize every metric as one JSON object, keys in sorted order
    /// (`family` or `family{key="value"}`). Counters and gauges render as
    /// unsigned integers; histograms as
    /// `{"count": N, "sum": N, "buckets": [[index, count], ...]}` with only
    /// the non-empty buckets listed. This is the `runtime` payload of the
    /// `metrics-snapshot` trace event.
    pub fn snapshot_value(&self) -> Value {
        let entries = self.inner.lock().unwrap();
        let mut fields: Vec<(String, Value)> = entries
            .iter()
            .map(|e| {
                let v = match &e.metric {
                    Metric::Counter(c) => Value::UInt(c.get()),
                    Metric::Gauge(g) => Value::UInt(g.get()),
                    Metric::Histogram(h) => Value::Obj(vec![
                        ("count".to_string(), Value::UInt(h.count())),
                        ("sum".to_string(), Value::UInt(h.sum())),
                        (
                            "buckets".to_string(),
                            Value::Arr(
                                h.nonzero_buckets()
                                    .into_iter()
                                    .map(|(i, n)| {
                                        Value::Arr(vec![Value::UInt(i as u64), Value::UInt(n)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (e.key(), v)
            })
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Obj(fields)
    }

    /// Render every metric in Prometheus text exposition format (version
    /// 0.0.4): one `# TYPE` line per family, then one sample line per
    /// member (histograms expand to cumulative `_bucket{le=...}` lines plus
    /// `_sum` and `_count`). Families render in sorted order, so output is
    /// deterministic for fixed values.
    pub fn render_prometheus(&self) -> String {
        let entries = self.inner.lock().unwrap();
        // Group members by family, families sorted, members sorted by label.
        let mut families: Vec<(&str, &'static str, Vec<&Entry>)> = Vec::new();
        for e in entries.iter() {
            match families.iter_mut().find(|(f, _, _)| *f == e.family) {
                Some((_, _, members)) => members.push(e),
                None => families.push((&e.family, e.metric.kind(), vec![e])),
            }
        }
        families.sort_by_key(|(a, _, _)| *a);
        let mut out = String::new();
        for (family, kind, mut members) in families {
            members.sort_by(|a, b| a.label.cmp(&b.label));
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            for e in members {
                let label = |extra: &str| match (&e.label, extra) {
                    (None, "") => String::new(),
                    (None, extra) => format!("{{{extra}}}"),
                    (Some((k, v)), "") => format!("{{{k}=\"{v}\"}}"),
                    (Some((k, v)), extra) => format!("{{{k}=\"{v}\",{extra}}}"),
                };
                match &e.metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{family}{} {}\n", label(""), c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{family}{} {}\n", label(""), g.get()));
                    }
                    Metric::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, n) in h.nonzero_buckets() {
                            cum += n;
                            let le = format!("le=\"{}\"", bucket_upper_bound(i));
                            out.push_str(&format!("{family}_bucket{} {cum}\n", label(&le)));
                        }
                        out.push_str(&format!(
                            "{family}_bucket{} {}\n",
                            label("le=\"+Inf\""),
                            h.count()
                        ));
                        out.push_str(&format!("{family}_sum{} {}\n", label(""), h.sum()));
                        out.push_str(&format!("{family}_count{} {}\n", label(""), h.count()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let m = MetricsRegistry::new();
        let c = m.counter("evals");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering returns the same underlying atomic.
        assert_eq!(m.counter("evals").get(), 5);

        let g = m.gauge("depth");
        g.set(7);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 6);
        let empty = m.gauge("zero");
        empty.dec(); // saturates, never wraps
        assert_eq!(empty.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 1000 (10 bits) -> 10; MAX -> 64.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1), (64, 1)]);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(100_000); // bucket 17, bound 131071
        }
        assert_eq!(h.quantile(50, 100), 127);
        assert_eq!(h.quantile(90, 100), 127);
        assert_eq!(h.quantile(99, 100), 131_071);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(50, 100), 0);
        // The free function agrees on deserialized pairs.
        assert_eq!(
            quantile_from_buckets(&[(7, 90), (17, 10)], 99, 100),
            131_071
        );
        assert_eq!(quantile_from_buckets(&[], 50, 100), 0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_deterministic() {
        let m = MetricsRegistry::new();
        m.counter("zebra").inc();
        m.gauge("alpha").set(2);
        m.histogram_labeled("pass_wall_ns", "pass", "regalloc")
            .record(3);
        let v = m.snapshot_value();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            vec!["alpha", "pass_wall_ns{pass=\"regalloc\"}", "zebra"]
        );
        // A registry with the same values registered in another order
        // snapshots byte-identically.
        let n = MetricsRegistry::new();
        n.histogram_labeled("pass_wall_ns", "pass", "regalloc")
            .record(3);
        n.counter("zebra").inc();
        n.gauge("alpha").set(2);
        assert_eq!(v.to_string(), n.snapshot_value().to_string());
        // Histogram shape: {"count":1,"sum":3,"buckets":[[2,1]]}.
        let hist = v.get("pass_wall_ns{pass=\"regalloc\"}").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(3));
        assert_eq!(hist.get("buckets").unwrap().to_string(), "[[2,1]]");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = MetricsRegistry::new();
        m.counter("metaopt_evaluations_total").add(42);
        m.gauge("metaopt_generation").set(3);
        let h = m.histogram("metaopt_eval_latency_ns");
        h.record(100);
        h.record(100_000);
        m.gauge_labeled("metaopt_service_queue_depth", "shard", "0")
            .set(5);
        let text = m.render_prometheus();
        for needle in [
            "# TYPE metaopt_evaluations_total counter\nmetaopt_evaluations_total 42\n",
            "# TYPE metaopt_generation gauge\nmetaopt_generation 3\n",
            "# TYPE metaopt_eval_latency_ns histogram\n",
            "metaopt_eval_latency_ns_bucket{le=\"127\"} 1\n",
            "metaopt_eval_latency_ns_bucket{le=\"131071\"} 2\n",
            "metaopt_eval_latency_ns_bucket{le=\"+Inf\"} 2\n",
            "metaopt_eval_latency_ns_sum 100100\n",
            "metaopt_eval_latency_ns_count 2\n",
            "metaopt_service_queue_depth{shard=\"0\"} 5\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let m = MetricsRegistry::new();
        m.counter("x");
        m.gauge("x");
    }
}
