//! Aggregate a `run-trace.v1` JSONL file into a human-readable report:
//! per-generation evaluation throughput and cache behaviour, the slowest
//! compiler passes, simulation volume, and quarantine pressure.

use crate::json::Value;
use crate::metrics::quantile_from_buckets;
use crate::schema::{validate_line, SchemaError, OUTCOME_SCORE};

/// One generation's aggregated row.
#[derive(Clone, Debug, PartialEq)]
pub struct GenRow {
    /// Generation index.
    pub gen: u64,
    /// Subset size evaluated this generation.
    pub subset_len: usize,
    /// Uncached evaluations performed.
    pub evals: u64,
    /// Memo-cache hits observed.
    pub cache_hits: u64,
    /// Best fitness this generation.
    pub best_fitness: f64,
    /// Mean population fitness.
    pub mean_fitness: f64,
    /// Wall time of the generation in nanoseconds.
    pub dur_ns: u64,
}

impl GenRow {
    /// Uncached evaluations per wall-clock second (0 when instantaneous).
    pub fn evals_per_sec(&self) -> f64 {
        if self.dur_ns == 0 {
            0.0
        } else {
            self.evals as f64 * 1e9 / self.dur_ns as f64
        }
    }

    /// Cache hit rate over this generation's lookups, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.evals;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// One compiler pass's aggregated cost across every traced compilation.
#[derive(Clone, Debug, PartialEq)]
pub struct PassRow {
    /// Pass name (plan syntax).
    pub pass: String,
    /// Number of executions.
    pub runs: u64,
    /// Total wall nanoseconds across all executions.
    pub total_ns: u64,
    /// Slowest single execution.
    pub max_ns: u64,
}

/// One pass's aggregated semantic-validation cost and outcomes across every
/// traced compilation (`validate` events).
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateRow {
    /// Pass name (plan syntax).
    pub pass: String,
    /// Number of validation runs.
    pub runs: u64,
    /// Runs whose validation failed (`ok: false`).
    pub failures: u64,
    /// Total findings (warnings and errors) across all runs.
    pub findings: u64,
    /// Total wall nanoseconds spent validating this pass.
    pub total_ns: u64,
}

/// Reliability counters: containment activity from the supervised
/// evaluation service (`retry`, `timeout`, `worker-restart` events) plus
/// persistent fitness-cache behaviour (`cache-recovered` events and warm
/// `eval`s). All zero on a healthy run without a persistent cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Reliability {
    /// Transient evaluation failures that were retried.
    pub retries: u64,
    /// Stalled jobs reclaimed by the wall-clock watchdog.
    pub timeouts: u64,
    /// Worker threads the supervisor respawned.
    pub worker_restarts: u64,
    /// Store opens that recovered a truncated/corrupt tail.
    pub cache_recovered: u64,
    /// Store opens (or appends) that degraded to in-memory-only.
    pub cache_degraded: u64,
    /// Evaluations answered by the persistent fitness cache
    /// (`eval` events carrying `"warm": true`).
    pub warm_evals: u64,
}

impl Reliability {
    /// True when every counter is zero (nothing to report).
    pub fn is_quiet(&self) -> bool {
        *self == Reliability::default()
    }
}

/// Digest of a co-evolved run's `pareto-front` stream: the final front's
/// shape plus the per-objective bests across its points. All figures are
/// integers straight from the trace — nothing here can go NaN.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontDigest {
    /// Generation of the last front event (the final front).
    pub gen: u64,
    /// Points on the final front.
    pub size: u64,
    /// Saturating hypervolume proxy of the final front.
    pub hypervolume: u64,
    /// Per-objective minimum across the final front's points, in the
    /// emitter's canonical objective order (cycles, size, compile).
    pub best: Vec<u64>,
    /// Total `pareto-front` events seen (one per generation).
    pub events: u64,
}

/// Aggregated view of one trace file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Total events.
    pub events: usize,
    /// Per-generation rows, in emission order.
    pub generations: Vec<GenRow>,
    /// Per-pass totals, sorted by total wall time (descending).
    pub passes: Vec<PassRow>,
    /// Per-pass semantic-validation totals, sorted by total wall time
    /// (descending).
    pub validation: Vec<ValidateRow>,
    /// Quarantine counts per error class, in first-seen order.
    pub quarantine: Vec<(String, u64)>,
    /// Number of simulations and their total simulated cycles.
    pub sims: (u64, u64),
    /// Total wall nanoseconds spent inside the simulator (`sim` events).
    pub sim_ns: u64,
    /// Number of checkpoint writes and their total wall nanoseconds.
    pub checkpoints: (u64, u64),
    /// Uncached evaluations across the whole trace.
    pub total_evals: u64,
    /// Cache hits across the whole trace.
    pub total_hits: u64,
    /// Log₂-bucketed evaluation latency: non-empty `(bucket index, count)`
    /// pairs over every `eval` event's `dur_ns` (the same bucket scheme as
    /// [`crate::metrics::Histogram`]). Empty when the trace has no evals.
    pub eval_latency: Vec<(usize, u64)>,
    /// Service containment and persistent-cache counters.
    pub reliability: Reliability,
    /// Final Pareto front of a co-evolved run; `None` on scalar traces
    /// (the digest then reports `front_size` 0 with a note).
    pub front: Option<FrontDigest>,
}

impl Report {
    /// Overall cache hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.total_hits + self.total_evals;
        if lookups == 0 {
            0.0
        } else {
            self.total_hits as f64 / lookups as f64
        }
    }

    /// Uncached evaluations per wall-clock second across the whole trace
    /// (0 when no generation time was recorded).
    pub fn evals_per_sec(&self) -> f64 {
        let gen_ns: u64 = self.generations.iter().map(|g| g.dur_ns).sum();
        if gen_ns == 0 {
            0.0
        } else {
            self.total_evals as f64 * 1e9 / gen_ns as f64
        }
    }

    /// Share of evaluations answered by the persistent fitness cache,
    /// in [0, 1]. Warm hits are counted as evaluations by the engine, so
    /// this is `warm_evals / total_evals`.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.total_evals == 0 {
            0.0
        } else {
            self.reliability.warm_evals as f64 / self.total_evals as f64
        }
    }

    /// Warm (persistent-cache-served) evaluations per wall-clock second
    /// of generation time — the throughput headroom a warm rerun gains.
    pub fn warm_evals_per_sec(&self) -> f64 {
        let gen_ns: u64 = self.generations.iter().map(|g| g.dur_ns).sum();
        if gen_ns == 0 {
            0.0
        } else {
            self.reliability.warm_evals as f64 * 1e9 / gen_ns as f64
        }
    }

    /// Simulated cycles per wall-clock second spent in the simulator
    /// (0 when no simulator time was recorded).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.sims.1 as f64 * 1e9 / self.sim_ns as f64
        }
    }

    /// The `q_num/q_den` quantile of per-evaluation latency in nanoseconds,
    /// derived from the log₂ buckets (so an upper bound, within 2x);
    /// 0 when the trace recorded no evaluations.
    pub fn eval_latency_quantile_ns(&self, q_num: u64, q_den: u64) -> u64 {
        quantile_from_buckets(&self.eval_latency, q_num, q_den)
    }

    /// Median evaluation latency in milliseconds (log₂-bucket upper bound).
    pub fn eval_p50_ms(&self) -> f64 {
        self.eval_latency_quantile_ns(50, 100) as f64 / 1e6
    }

    /// 99th-percentile evaluation latency in milliseconds (log₂-bucket
    /// upper bound).
    pub fn eval_p99_ms(&self) -> f64 {
        self.eval_latency_quantile_ns(99, 100) as f64 / 1e6
    }

    /// Anomalies worth surfacing next to the digest: throughput figures
    /// that read 0 not because the run was slow but because the trace holds
    /// no evaluations, no recorded generation time, or no simulator time.
    pub fn notes(&self) -> Vec<String> {
        let mut notes = Vec::new();
        let gen_ns: u64 = self.generations.iter().map(|g| g.dur_ns).sum();
        if self.total_evals == 0 {
            notes.push("no evaluations recorded; evals/sec reported as 0".to_string());
        } else if gen_ns == 0 {
            notes.push(
                "no generation wall time recorded (instant trace); evals/sec reported as 0"
                    .to_string(),
            );
        }
        if self.sims.0 > 0 && self.sim_ns == 0 {
            notes.push(
                "simulations recorded no wall time; sim cycles/sec reported as 0".to_string(),
            );
        }
        if self.front.is_none() {
            notes.push(
                "no co-evolution (pareto-front) events; front_size reported as 0".to_string(),
            );
        }
        notes
    }

    /// The throughput digest consumed by `BENCH_evals.json` and the CI
    /// regression gate: evaluation throughput, cache behaviour, and
    /// simulator speed, rendered as a JSON object.
    pub fn bench_json(&self) -> String {
        use crate::json::Value;
        Value::Obj(vec![
            (
                "evals_per_sec".to_string(),
                Value::Num(self.evals_per_sec()),
            ),
            ("cache_hit_rate".to_string(), Value::Num(self.hit_rate())),
            (
                "sim_cycles_per_sec".to_string(),
                Value::Num(self.sim_cycles_per_sec()),
            ),
            ("total_evals".to_string(), Value::UInt(self.total_evals)),
            ("sim_cycles".to_string(), Value::UInt(self.sims.1)),
            (
                "warm_evals".to_string(),
                Value::UInt(self.reliability.warm_evals),
            ),
            (
                "warm_evals_per_sec".to_string(),
                Value::Num(self.warm_evals_per_sec()),
            ),
            ("eval_p50_ms".to_string(), Value::Num(self.eval_p50_ms())),
            ("eval_p99_ms".to_string(), Value::Num(self.eval_p99_ms())),
            (
                "front_size".to_string(),
                Value::UInt(self.front.as_ref().map_or(0, |f| f.size)),
            ),
        ])
        .to_string()
    }

    /// Render the report as aligned text tables (the `metaopt trace-report`
    /// output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} events · {} generations · cache hit rate {:.1}%\n",
            self.events,
            self.generations.len(),
            100.0 * self.hit_rate()
        );
        if !self.generations.is_empty() {
            out.push_str(&format!(
                "\n{:>4} {:>6} {:>6} {:>10} {:>6} {:>9} {:>9}\n",
                "gen", "subset", "evals", "evals/sec", "hit%", "best", "mean"
            ));
            for g in &self.generations {
                out.push_str(&format!(
                    "{:>4} {:>6} {:>6} {:>10.1} {:>6.1} {:>9.4} {:>9.4}\n",
                    g.gen,
                    g.subset_len,
                    g.evals,
                    g.evals_per_sec(),
                    100.0 * g.hit_rate(),
                    g.best_fitness,
                    g.mean_fitness,
                ));
            }
        }
        if !self.passes.is_empty() {
            out.push_str(&format!(
                "\n{:<12} {:>8} {:>12} {:>12} {:>12}\n",
                "pass", "runs", "total", "mean", "max"
            ));
            for p in self.passes.iter().take(10) {
                let mean = p.total_ns as f64 / p.runs.max(1) as f64;
                out.push_str(&format!(
                    "{:<12} {:>8} {:>10.1}us {:>10.1}us {:>10.1}us\n",
                    p.pass,
                    p.runs,
                    p.total_ns as f64 / 1e3,
                    mean / 1e3,
                    p.max_ns as f64 / 1e3,
                ));
            }
        }
        if !self.validation.is_empty() {
            let grand: u64 = self.validation.iter().map(|r| r.total_ns).sum();
            out.push_str(&format!(
                "\n{:<12} {:>8} {:>9} {:>9} {:>12} {:>7}\n",
                "validate", "runs", "failures", "findings", "total", "share"
            ));
            for r in &self.validation {
                let share = if grand == 0 {
                    0.0
                } else {
                    100.0 * r.total_ns as f64 / grand as f64
                };
                out.push_str(&format!(
                    "{:<12} {:>8} {:>9} {:>9} {:>10.1}us {:>6.1}%\n",
                    r.pass,
                    r.runs,
                    r.failures,
                    r.findings,
                    r.total_ns as f64 / 1e3,
                    share,
                ));
            }
        }
        if self.sims.0 > 0 {
            out.push_str(&format!(
                "\nsimulations: {} runs, {} cycles total\n",
                self.sims.0, self.sims.1
            ));
        }
        if self.checkpoints.0 > 0 {
            out.push_str(&format!(
                "checkpoints: {} writes, {:.1}ms total\n",
                self.checkpoints.0,
                self.checkpoints.1 as f64 / 1e6
            ));
        }
        if let Some(front) = &self.front {
            out.push_str(&format!(
                "pareto front: gen {}, {} point(s), hypervolume {}",
                front.gen, front.size, front.hypervolume
            ));
            if !front.best.is_empty() {
                const NAMES: [&str; 3] = ["cycles", "size", "compile"];
                let parts: Vec<String> = front
                    .best
                    .iter()
                    .enumerate()
                    .map(|(k, b)| match NAMES.get(k) {
                        Some(name) => format!("{name} {b}"),
                        None => format!("obj{k} {b}"),
                    })
                    .collect();
                out.push_str(&format!(", best {}", parts.join(" / ")));
            }
            out.push('\n');
        }
        if !self.reliability.is_quiet() {
            let r = &self.reliability;
            out.push_str(&format!(
                "reliability: {} retries, {} timeouts, {} worker restarts, \
                 {} cache recoveries, {} cache degradations\n",
                r.retries, r.timeouts, r.worker_restarts, r.cache_recovered, r.cache_degraded
            ));
            if r.warm_evals > 0 {
                out.push_str(&format!(
                    "warm cache: {} evals served ({:.1}% of evaluations, {:.1}/sec)\n",
                    r.warm_evals,
                    100.0 * self.warm_hit_rate(),
                    self.warm_evals_per_sec()
                ));
            }
        }
        if !self.eval_latency.is_empty() {
            out.push_str(&format!(
                "eval latency: p50 {:.3}ms, p99 {:.3}ms (log2-bucket upper bounds)\n",
                self.eval_p50_ms(),
                self.eval_p99_ms()
            ));
        }
        if self.quarantine.is_empty() {
            out.push_str("quarantine: none\n");
        } else {
            let classes: Vec<String> = self
                .quarantine
                .iter()
                .map(|(k, n)| format!("{k} x{n}"))
                .collect();
            out.push_str(&format!("quarantine: {}\n", classes.join(", ")));
        }
        for note in self.notes() {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Validate and aggregate a JSONL trace.
///
/// # Errors
/// Fails (with the offending line) when any line violates `run-trace.v1`.
pub fn analyze(text: &str) -> Result<Report, SchemaError> {
    let mut report = Report::default();
    let mut any = false;
    for (ix, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        any = true;
        let ty = validate_line(ix + 1, line)?;
        report.events += 1;
        // validate_line proved every field below present and typed.
        let v = crate::json::parse(line).expect("validated line parses");
        let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        let f = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        match ty.as_str() {
            "generation" => {
                let row = GenRow {
                    gen: u("gen"),
                    subset_len: v
                        .get("subset")
                        .and_then(Value::as_arr)
                        .map_or(0, <[Value]>::len),
                    evals: u("evals"),
                    cache_hits: u("cache_hits"),
                    best_fitness: f("best_fitness"),
                    mean_fitness: f("mean_fitness"),
                    dur_ns: u("dur_ns"),
                };
                report.total_evals += row.evals;
                report.total_hits += row.cache_hits;
                report.generations.push(row);
            }
            "pass" => {
                let name = v.get("pass").and_then(Value::as_str).unwrap_or("?");
                let wall = u("wall_ns");
                match report.passes.iter_mut().find(|p| p.pass == name) {
                    Some(p) => {
                        p.runs += 1;
                        p.total_ns += wall;
                        p.max_ns = p.max_ns.max(wall);
                    }
                    None => report.passes.push(PassRow {
                        pass: name.to_string(),
                        runs: 1,
                        total_ns: wall,
                        max_ns: wall,
                    }),
                }
            }
            "eval" => {
                let outcome = v.get("outcome").and_then(Value::as_str).unwrap_or("?");
                if outcome != OUTCOME_SCORE {
                    match report.quarantine.iter_mut().find(|(k, _)| k == outcome) {
                        Some((_, n)) => *n += 1,
                        None => report.quarantine.push((outcome.to_string(), 1)),
                    }
                }
                if matches!(v.get("warm"), Some(Value::Bool(true))) {
                    report.reliability.warm_evals += 1;
                }
                // Same bucket scheme as metrics::Histogram: index = bit
                // length of the duration.
                let idx = (64 - u("dur_ns").leading_zeros()) as usize;
                match report.eval_latency.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, n)) => *n += 1,
                    None => {
                        report.eval_latency.push((idx, 1));
                        report.eval_latency.sort_unstable_by_key(|(i, _)| *i);
                    }
                }
            }
            "retry" => report.reliability.retries += 1,
            "timeout" => report.reliability.timeouts += 1,
            "worker-restart" => report.reliability.worker_restarts += 1,
            "cache-recovered" => match v.get("mode").and_then(Value::as_str) {
                Some("recovered") => report.reliability.cache_recovered += 1,
                _ => report.reliability.cache_degraded += 1,
            },
            "sim" => {
                report.sims.0 += 1;
                report.sims.1 += u("cycles");
                report.sim_ns += u("dur_ns");
            }
            "validate" => {
                let name = v.get("pass").and_then(Value::as_str).unwrap_or("?");
                let ok = matches!(v.get("ok"), Some(Value::Bool(true)));
                let wall = u("wall_ns");
                let found = u("findings");
                match report.validation.iter_mut().find(|r| r.pass == name) {
                    Some(r) => {
                        r.runs += 1;
                        r.failures += u64::from(!ok);
                        r.findings += found;
                        r.total_ns += wall;
                    }
                    None => report.validation.push(ValidateRow {
                        pass: name.to_string(),
                        runs: 1,
                        failures: u64::from(!ok),
                        findings: found,
                        total_ns: wall,
                    }),
                }
            }
            "checkpoint" => {
                report.checkpoints.0 += 1;
                report.checkpoints.1 += u("dur_ns");
            }
            "pareto-front" => {
                // Keep the last event (the final front); the running count
                // carries over so the digest also says how many fronts the
                // run reported.
                let mut best: Vec<u64> = Vec::new();
                if let Some(points) = v.get("points").and_then(Value::as_arr) {
                    for point in points {
                        let objectives = point
                            .get("objectives")
                            .and_then(Value::as_arr)
                            .unwrap_or(&[]);
                        for (k, o) in objectives.iter().enumerate() {
                            let val = o.as_u64().unwrap_or(0);
                            match best.get_mut(k) {
                                Some(b) => *b = (*b).min(val),
                                None => best.push(val),
                            }
                        }
                    }
                }
                let events = report.front.as_ref().map_or(0, |f| f.events) + 1;
                report.front = Some(FrontDigest {
                    gen: u("gen"),
                    size: u("size"),
                    hypervolume: u("hypervolume"),
                    best,
                    events,
                });
            }
            _ => {}
        }
    }
    if !any {
        return Err(SchemaError {
            line: 1,
            message: "empty trace".to_string(),
        });
    }
    report
        .passes
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.pass.cmp(&b.pass)));
    report
        .validation
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.pass.cmp(&b.pass)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn synthetic_trace() -> String {
        let t = Tracer::in_memory();
        for gen in 0..2u64 {
            for case in 0..3u64 {
                t.emit(
                    "eval",
                    [
                        ("gen", Value::UInt(gen)),
                        ("genome", Value::str(format!("(g{gen}-{case})"))),
                        ("case", Value::UInt(case)),
                        (
                            "outcome",
                            Value::str(if case == 2 && gen == 1 {
                                "budget"
                            } else {
                                OUTCOME_SCORE
                            }),
                        ),
                        ("score", Value::Num(1.1)),
                        ("dur_ns", Value::UInt(500)),
                        ("warm", Value::Bool(gen == 0 && case == 0)),
                    ],
                );
                t.emit(
                    "pass",
                    [
                        (
                            "pass",
                            Value::str(if case == 0 { "regalloc" } else { "schedule" }),
                        ),
                        ("wall_ns", Value::UInt(1000 * (case + 1))),
                        ("delta", Value::Obj(vec![])),
                    ],
                );
                t.emit(
                    "sim",
                    [
                        ("cycles", Value::UInt(100)),
                        ("insts", Value::UInt(50)),
                        ("dur_ns", Value::UInt(10)),
                    ],
                );
                t.emit(
                    "validate",
                    [
                        (
                            "pass",
                            Value::str(if case == 0 { "regalloc" } else { "schedule" }),
                        ),
                        ("level", Value::str("full")),
                        ("ok", Value::Bool(!(case == 2 && gen == 1))),
                        ("findings", Value::UInt(case)),
                        ("wall_ns", Value::UInt(200 * (case + 1))),
                    ],
                );
            }
            t.emit(
                "generation",
                [
                    ("gen", Value::UInt(gen)),
                    (
                        "subset",
                        Value::Arr(vec![Value::UInt(0), Value::UInt(1), Value::UInt(2)]),
                    ),
                    ("evals", Value::UInt(3)),
                    ("cache_hits", Value::UInt(1)),
                    ("best_fitness", Value::Num(1.5)),
                    ("mean_fitness", Value::Num(1.2)),
                    ("best_size", Value::UInt(5)),
                    ("dur_ns", Value::UInt(3_000_000)),
                ],
            );
            t.emit(
                "checkpoint",
                [
                    ("gen", Value::UInt(gen + 1)),
                    ("dur_ns", Value::UInt(2_000_000)),
                ],
            );
        }
        // Reliability events from a contained run over a recovered cache.
        t.emit(
            "retry",
            [
                ("gen", Value::UInt(0)),
                ("genome", Value::str("(g0-0)")),
                ("case", Value::UInt(0)),
                ("attempt", Value::UInt(0)),
                ("kind", Value::str("timeout")),
                ("backoff_ns", Value::UInt(65_536)),
            ],
        );
        t.emit(
            "timeout",
            [
                ("genome", Value::str("(g0-1)")),
                ("case", Value::UInt(1)),
                ("wall_ns", Value::UInt(5_000_000)),
            ],
        );
        t.emit(
            "worker-restart",
            [
                ("worker", Value::UInt(1)),
                ("restarts", Value::UInt(1)),
                ("reason", Value::str("worker thread died")),
            ],
        );
        t.emit(
            "cache-recovered",
            [
                ("mode", Value::str("recovered")),
                ("entries", Value::UInt(4)),
                ("dropped_bytes", Value::UInt(12)),
            ],
        );
        t.lines().unwrap().join("\n")
    }

    #[test]
    fn aggregates_generations_passes_and_quarantine() {
        let r = analyze(&synthetic_trace()).unwrap();
        assert_eq!(r.generations.len(), 2);
        assert_eq!(r.generations[0].evals, 3);
        assert!((r.generations[0].evals_per_sec() - 1000.0).abs() < 1e-9);
        assert!((r.generations[0].hit_rate() - 0.25).abs() < 1e-9);
        assert_eq!(r.total_evals, 6);
        assert_eq!(r.sims, (6, 600));
        assert_eq!(r.checkpoints.0, 2);
        assert_eq!(r.quarantine, vec![("budget".to_string(), 1)]);
        // schedule ran 4x at 2000/3000ns, regalloc 2x at 1000ns; schedule
        // dominates total wall and sorts first.
        assert_eq!(r.passes[0].pass, "schedule");
        assert_eq!(r.passes[0].runs, 4);
        assert_eq!(r.passes[1].pass, "regalloc");
        assert_eq!(r.passes[1].max_ns, 1000);
    }

    #[test]
    fn aggregates_validate_events_per_pass() {
        let r = analyze(&synthetic_trace()).unwrap();
        // schedule validated 4x (cases 1,2 per gen): one failure (gen 1
        // case 2), findings 1+2 per gen, wall 400+600 per gen.
        let sched = r.validation.iter().find(|v| v.pass == "schedule").unwrap();
        assert_eq!((sched.runs, sched.failures, sched.findings), (4, 1, 6));
        assert_eq!(sched.total_ns, 2000);
        let ra = r.validation.iter().find(|v| v.pass == "regalloc").unwrap();
        assert_eq!((ra.runs, ra.failures, ra.findings), (2, 0, 0));
        assert_eq!(ra.total_ns, 400);
        // Sorted by total wall time: schedule first.
        assert_eq!(r.validation[0].pass, "schedule");
    }

    #[test]
    fn bench_json_digests_throughput() {
        let r = analyze(&synthetic_trace()).unwrap();
        // 6 evals over 6ms of generation time, 600 cycles over 60ns of sim.
        assert!((r.evals_per_sec() - 1000.0).abs() < 1e-9);
        assert!((r.sim_cycles_per_sec() - 1e10).abs() < 1.0);
        let digest = r.bench_json();
        let v = crate::json::parse(&digest).expect("bench digest is valid JSON");
        assert_eq!(v.get("total_evals").and_then(Value::as_u64), Some(6));
        assert_eq!(v.get("sim_cycles").and_then(Value::as_u64), Some(600));
        let hit = v.get("cache_hit_rate").and_then(Value::as_f64).unwrap();
        assert!((hit - 0.25).abs() < 1e-9, "hit rate {hit}");
        assert!(v.get("evals_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn render_mentions_every_section() {
        let r = analyze(&synthetic_trace()).unwrap();
        let text = r.render();
        for needle in [
            "evals/sec",
            "hit%",
            "pass",
            "schedule",
            "validate",
            "failures",
            "simulations",
            "reliability: 1 retries, 1 timeouts, 1 worker restarts",
            "warm cache: 1 evals served",
            "quarantine: budget x1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // A trace with no reliability events renders no reliability line.
        let quiet = Tracer::in_memory();
        quiet.emit(
            "checkpoint",
            [("gen", Value::UInt(1)), ("dur_ns", Value::UInt(1))],
        );
        let quiet = analyze(&quiet.lines().unwrap().join("\n")).unwrap();
        assert!(quiet.reliability.is_quiet());
        assert!(!quiet.render().contains("reliability:"));
    }

    #[test]
    fn reliability_counters_and_warm_throughput() {
        let r = analyze(&synthetic_trace()).unwrap();
        assert_eq!(
            r.reliability,
            Reliability {
                retries: 1,
                timeouts: 1,
                worker_restarts: 1,
                cache_recovered: 1,
                cache_degraded: 0,
                warm_evals: 1,
            }
        );
        // 1 warm eval of 6 total, over 6ms of generation time.
        assert!((r.warm_hit_rate() - 1.0 / 6.0).abs() < 1e-9);
        assert!((r.warm_evals_per_sec() - 1e9 / 6e6).abs() < 1e-6);
        let v = crate::json::parse(&r.bench_json()).unwrap();
        assert_eq!(v.get("warm_evals").and_then(Value::as_u64), Some(1));
        assert!(v.get("warm_evals_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn analyze_rejects_invalid_traces() {
        assert!(analyze("").is_err());
        assert!(analyze("{\"type\":\"generation\",\"ts\":0}").is_err());
    }

    #[test]
    fn eval_latency_quantiles_ride_the_digest() {
        let r = analyze(&synthetic_trace()).unwrap();
        // Every synthetic eval takes 500ns -> bucket 9 (upper bound 511).
        assert_eq!(r.eval_latency, vec![(9, 6)]);
        assert_eq!(r.eval_latency_quantile_ns(50, 100), 511);
        assert_eq!(r.eval_latency_quantile_ns(99, 100), 511);
        let v = crate::json::parse(&r.bench_json()).unwrap();
        let p50 = v.get("eval_p50_ms").and_then(Value::as_f64).unwrap();
        let p99 = v.get("eval_p99_ms").and_then(Value::as_f64).unwrap();
        assert!((p50 - 511e-6).abs() < 1e-12, "p50 {p50}");
        assert!((p99 - 511e-6).abs() < 1e-12, "p99 {p99}");
        assert!(r.render().contains("eval latency: p50"));
    }

    #[test]
    fn empty_and_instant_traces_report_zero_with_a_note() {
        // A header-only trace: no evals, no sims, no generations.
        let t = Tracer::in_memory();
        let r = analyze(&t.lines().unwrap().join("\n")).unwrap();
        assert_eq!(r.evals_per_sec(), 0.0);
        assert_eq!(r.sim_cycles_per_sec(), 0.0);
        assert_eq!(r.warm_evals_per_sec(), 0.0);
        assert_eq!(r.eval_p50_ms(), 0.0);
        let digest = r.bench_json();
        // The digest stays finite JSON: no NaN/Inf leaks (which would
        // serialize as null) and every figure is a number.
        assert!(!digest.contains("null"), "{digest}");
        let v = crate::json::parse(&digest).unwrap();
        assert_eq!(v.get("evals_per_sec").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            v.get("sim_cycles_per_sec").and_then(Value::as_f64),
            Some(0.0)
        );
        assert_eq!(
            r.notes(),
            vec![
                "no evaluations recorded; evals/sec reported as 0".to_string(),
                "no co-evolution (pareto-front) events; front_size reported as 0".to_string(),
            ]
        );
        assert!(r.render().contains("note: no evaluations recorded"));

        // An "instant" trace: work recorded, but zero wall time everywhere
        // (e.g. a clock too coarse to observe the run).
        let t = Tracer::in_memory();
        t.emit(
            "generation",
            [
                ("gen", Value::UInt(0)),
                ("subset", Value::Arr(vec![Value::UInt(0)])),
                ("evals", Value::UInt(5)),
                ("cache_hits", Value::UInt(0)),
                ("best_fitness", Value::Num(1.0)),
                ("mean_fitness", Value::Num(1.0)),
                ("best_size", Value::UInt(1)),
                ("dur_ns", Value::UInt(0)),
            ],
        );
        t.emit(
            "sim",
            [
                ("cycles", Value::UInt(100)),
                ("insts", Value::UInt(50)),
                ("dur_ns", Value::UInt(0)),
            ],
        );
        let r = analyze(&t.lines().unwrap().join("\n")).unwrap();
        assert_eq!(r.evals_per_sec(), 0.0);
        assert_eq!(r.sim_cycles_per_sec(), 0.0);
        assert!(r.evals_per_sec().is_finite() && r.sim_cycles_per_sec().is_finite());
        let notes = r.notes();
        assert_eq!(notes.len(), 3, "{notes:?}");
        assert!(notes[0].contains("no generation wall time"), "{notes:?}");
        assert!(
            notes[1].contains("simulations recorded no wall time"),
            "{notes:?}"
        );
        assert!(notes[2].contains("pareto-front"), "{notes:?}");
        assert!(!r.bench_json().contains("null"));
    }

    fn front_event(t: &Tracer, gen: u64, vectors: &[[u64; 3]]) {
        let points = vectors
            .iter()
            .enumerate()
            .map(|(i, o)| {
                Value::Obj(vec![
                    ("plan".to_string(), Value::str(format!("p{i}"))),
                    ("expr".to_string(), Value::str("(rconst 1.0)")),
                    (
                        "objectives".to_string(),
                        Value::Arr(o.iter().map(|&x| Value::UInt(x)).collect()),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        t.emit(
            "pareto-front",
            [
                ("gen", Value::UInt(gen)),
                ("size", Value::UInt(vectors.len() as u64)),
                ("hypervolume", Value::UInt(1000 + gen)),
                ("points", Value::Arr(points)),
            ],
        );
    }

    #[test]
    fn pareto_front_digest_tracks_the_final_front() {
        let t = Tracer::in_memory();
        front_event(&t, 0, &[[900, 170, 500]]);
        front_event(&t, 1, &[[901, 168, 504], [950, 180, 360]]);
        let r = analyze(&t.lines().unwrap().join("\n")).unwrap();
        let front = r.front.as_ref().expect("front digested");
        assert_eq!(
            (front.gen, front.size, front.hypervolume, front.events),
            (1, 2, 1001, 2)
        );
        // Per-objective best across the FINAL front only.
        assert_eq!(front.best, vec![901, 168, 360]);
        let v = crate::json::parse(&r.bench_json()).unwrap();
        assert_eq!(v.get("front_size").and_then(Value::as_u64), Some(2));
        let text = r.render();
        assert!(
            text.contains("pareto front: gen 1, 2 point(s), hypervolume 1001"),
            "{text}"
        );
        assert!(
            text.contains("best cycles 901 / size 168 / compile 360"),
            "{text}"
        );
        // A co-evolved trace earns no "no co-evolution" note.
        assert!(r.notes().iter().all(|n| !n.contains("pareto-front")));
    }

    #[test]
    fn scalar_traces_report_front_size_zero_with_a_note() {
        let r = analyze(&synthetic_trace()).unwrap();
        assert!(r.front.is_none());
        let digest = r.bench_json();
        assert!(!digest.contains("null"), "{digest}");
        let v = crate::json::parse(&digest).unwrap();
        assert_eq!(v.get("front_size").and_then(Value::as_u64), Some(0));
        assert!(
            r.notes().iter().any(|n| n.contains("pareto-front")),
            "{:?}",
            r.notes()
        );
        assert!(!r.render().contains("pareto front: gen"));
    }
}
