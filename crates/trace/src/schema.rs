//! The `run-trace.v1` schema: event taxonomy and JSONL validation.
//!
//! Versioning policy (see DESIGN.md §12): a trace's first line is a
//! `trace-header` event naming its schema. Within `v1`, *adding* event
//! types or optional attributes is allowed; removing or re-typing a
//! required attribute, or changing an event's meaning, requires bumping to
//! `run-trace.v2`. The validator is therefore strict about required fields
//! and known types, but tolerates unknown extra attributes (forward
//! compatibility within the version).

use crate::json::{self, Value};
use crate::SCHEMA_VERSION;
use std::fmt;

/// The expected JSON shape of a required attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// A JSON string.
    Str,
    /// An unsigned integer.
    UInt,
    /// Any number (integer or float; `null` tolerated for non-finite).
    Num,
    /// `true`/`false`.
    Bool,
    /// An array.
    Arr,
    /// An object.
    Obj,
}

impl FieldKind {
    fn matches(self, v: &Value) -> bool {
        match self {
            FieldKind::Str => matches!(v, Value::Str(_)),
            FieldKind::UInt => matches!(v, Value::UInt(_)),
            FieldKind::Num => matches!(v, Value::UInt(_) | Value::Num(_) | Value::Null),
            FieldKind::Bool => matches!(v, Value::Bool(_)),
            FieldKind::Arr => matches!(v, Value::Arr(_)),
            FieldKind::Obj => matches!(v, Value::Obj(_)),
        }
    }
}

/// Required attributes per event type (beyond the universal `type` and
/// `ts`). This table *is* the `run-trace.v1` contract; the golden trace
/// test and DESIGN.md §12 mirror it.
pub const EVENT_TYPES: &[(&str, &[(&str, FieldKind)])] = &[
    (
        "trace-header",
        &[("schema", FieldKind::Str), ("producer", FieldKind::Str)],
    ),
    ("run-start", &[("command", FieldKind::Str)]),
    (
        "run-end",
        &[("command", FieldKind::Str), ("dur_ns", FieldKind::UInt)],
    ),
    (
        "evolution-start",
        &[
            ("population", FieldKind::UInt),
            ("generations", FieldKind::UInt),
            ("start_gen", FieldKind::UInt),
            ("threads", FieldKind::UInt),
            ("resumed", FieldKind::Bool),
        ],
    ),
    (
        "evolution-end",
        &[
            ("evaluations", FieldKind::UInt),
            ("successes", FieldKind::UInt),
            ("failures", FieldKind::UInt),
            ("quarantined", FieldKind::UInt),
            ("best_fitness", FieldKind::Num),
            ("best", FieldKind::Str),
            ("dur_ns", FieldKind::UInt),
        ],
    ),
    (
        "generation",
        &[
            ("gen", FieldKind::UInt),
            ("subset", FieldKind::Arr),
            ("evals", FieldKind::UInt),
            ("cache_hits", FieldKind::UInt),
            ("best_fitness", FieldKind::Num),
            ("mean_fitness", FieldKind::Num),
            ("best_size", FieldKind::UInt),
            ("dur_ns", FieldKind::UInt),
        ],
    ),
    (
        "eval",
        &[
            ("gen", FieldKind::UInt),
            ("genome", FieldKind::Str),
            ("case", FieldKind::UInt),
            ("outcome", FieldKind::Str),
            ("dur_ns", FieldKind::UInt),
        ],
    ),
    (
        "pass",
        &[
            ("pass", FieldKind::Str),
            ("wall_ns", FieldKind::UInt),
            ("delta", FieldKind::Obj),
        ],
    ),
    (
        "sim",
        &[
            ("cycles", FieldKind::UInt),
            ("insts", FieldKind::UInt),
            ("dur_ns", FieldKind::UInt),
        ],
    ),
    (
        "validate",
        &[
            ("pass", FieldKind::Str),
            ("level", FieldKind::Str),
            ("ok", FieldKind::Bool),
            ("findings", FieldKind::UInt),
            ("wall_ns", FieldKind::UInt),
        ],
    ),
    (
        "checkpoint",
        &[("gen", FieldKind::UInt), ("dur_ns", FieldKind::UInt)],
    ),
    // Reliability events (additive within v1): retry/timeout/worker-restart
    // come from the supervised evaluation service, cache-recovered from the
    // persistent fitness store.
    (
        "retry",
        &[
            ("gen", FieldKind::UInt),
            ("genome", FieldKind::Str),
            ("case", FieldKind::UInt),
            ("attempt", FieldKind::UInt),
            ("kind", FieldKind::Str),
            ("backoff_ns", FieldKind::UInt),
        ],
    ),
    (
        "timeout",
        &[
            ("genome", FieldKind::Str),
            ("case", FieldKind::UInt),
            ("wall_ns", FieldKind::UInt),
        ],
    ),
    (
        "worker-restart",
        &[
            ("worker", FieldKind::UInt),
            ("restarts", FieldKind::UInt),
            ("reason", FieldKind::Str),
        ],
    ),
    (
        "cache-recovered",
        &[
            ("mode", FieldKind::Str),
            ("entries", FieldKind::UInt),
            ("dropped_bytes", FieldKind::UInt),
        ],
    ),
    // Co-evolution (additive within v1): one Pareto-front snapshot per
    // generation. `points` holds the non-dominated `(plan, expr)` genomes
    // with their integer objective vectors (cycles, code size, compile-cost
    // proxy — minimized); `hypervolume` is the front's saturating integer
    // hypervolume proxy, so the digest never needs floating point.
    (
        "pareto-front",
        &[
            ("gen", FieldKind::UInt),
            ("size", FieldKind::UInt),
            ("hypervolume", FieldKind::UInt),
            ("points", FieldKind::Arr),
        ],
    ),
    // Live metrics (additive within v1): one registry dump per generation.
    // `seq` is a monotonic snapshot sequence number (not wall time);
    // `counters` holds the deterministic engine counters; the optional
    // `runtime` object carries the full registry dump (latency histograms,
    // service gauges) and is stripped by `strip_timing` because it is
    // schedule-dependent.
    (
        "metrics-snapshot",
        &[
            ("seq", FieldKind::UInt),
            ("gen", FieldKind::UInt),
            ("counters", FieldKind::Obj),
        ],
    ),
];

/// The `eval` outcome label for a successful evaluation; any other label is
/// a quarantine error class.
pub const OUTCOME_SCORE: &str = "score";

/// A schema violation (or JSON parse failure) at a specific line.
#[derive(Clone, Debug)]
pub struct SchemaError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// What is wrong with the line.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Summary of a validated trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (lines).
    pub events: usize,
    /// `(type, count)` in first-seen order.
    pub by_type: Vec<(String, usize)>,
}

/// Validate one line against `run-trace.v1`. `lineno` is 1-based; the
/// first line must be the `trace-header`.
///
/// # Errors
/// Fails on malformed JSON, a non-object, a missing/unknown `type`, a
/// missing or mistyped required attribute, or a bad header.
pub fn validate_line(lineno: usize, line: &str) -> Result<String, SchemaError> {
    let err = |message: String| SchemaError {
        line: lineno,
        message,
    };
    let v = json::parse(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
    if v.as_obj().is_none() {
        return Err(err("event is not a JSON object".to_string()));
    }
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing string field \"type\"".to_string()))?;
    if v.get("ts").and_then(Value::as_u64).is_none() {
        return Err(err(format!(
            "event {ty:?} lacks the unsigned-integer field \"ts\""
        )));
    }
    let Some((_, required)) = EVENT_TYPES.iter().find(|(name, _)| *name == ty) else {
        return Err(err(format!(
            "unknown event type {ty:?} (schema drift? bump {SCHEMA_VERSION})"
        )));
    };
    for (key, kind) in *required {
        match v.get(key) {
            None => return Err(err(format!("event {ty:?} lacks required field {key:?}"))),
            Some(val) if !kind.matches(val) => {
                return Err(err(format!("event {ty:?} field {key:?} is not a {kind:?}")))
            }
            Some(_) => {}
        }
    }
    // Conditional contracts.
    if ty == "trace-header" {
        if lineno != 1 {
            return Err(err("trace-header must be the first line".to_string()));
        }
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA_VERSION {
            return Err(err(format!(
                "unsupported schema {schema:?} (this validator reads {SCHEMA_VERSION})"
            )));
        }
    } else if lineno == 1 {
        return Err(err(format!(
            "first line must be the trace-header, found {ty:?}"
        )));
    }
    if ty == "eval"
        && v.get("outcome").and_then(Value::as_str) == Some(OUTCOME_SCORE)
        && !matches!(v.get("score"), Some(Value::UInt(_) | Value::Num(_)))
    {
        return Err(err(
            "eval with outcome \"score\" lacks a numeric \"score\"".to_string()
        ));
    }
    // Sim events may carry the executing tier (additive within v1); when
    // present it must be one of the known tier names.
    if ty == "sim" {
        if let Some(tier) = v.get("tier") {
            let known = matches!(tier.as_str(), Some("fast" | "reference"));
            if !known {
                return Err(err(
                    "sim \"tier\" must be \"fast\" or \"reference\"".to_string()
                ));
            }
        }
    }
    // `subset` entries must be case indices.
    if ty == "generation" {
        let subset = v.get("subset").and_then(Value::as_arr).unwrap_or(&[]);
        if subset.iter().any(|c| c.as_u64().is_none()) {
            return Err(err(
                "generation subset entries must be case indices".to_string()
            ));
        }
    }
    // Pareto-front snapshots: `size` counts the points, and every point is
    // an object carrying the genome (plan + expr strings) and an unsigned
    // objective vector.
    if ty == "pareto-front" {
        let size = v.get("size").and_then(Value::as_u64).unwrap_or(0);
        let points = v.get("points").and_then(Value::as_arr).unwrap_or(&[]);
        if points.len() as u64 != size {
            return Err(err(format!(
                "pareto-front size {size} disagrees with {} points",
                points.len()
            )));
        }
        for p in points {
            let well_formed = p.get("plan").and_then(Value::as_str).is_some()
                && p.get("expr").and_then(Value::as_str).is_some()
                && p.get("objectives")
                    .and_then(Value::as_arr)
                    .is_some_and(|os| !os.is_empty() && os.iter().all(|o| o.as_u64().is_some()));
            if !well_formed {
                return Err(err(
                    "pareto-front points must carry \"plan\", \"expr\", and an \
                     unsigned \"objectives\" vector"
                        .to_string(),
                ));
            }
        }
    }
    // Metrics snapshots: the deterministic `counters` object holds unsigned
    // counts only; the optional `runtime` registry dump must be an object,
    // and any histogram inside it must have well-formed log2 buckets.
    if ty == "metrics-snapshot" {
        let counters = v.get("counters").and_then(Value::as_obj).unwrap_or(&[]);
        if counters.iter().any(|(_, c)| c.as_u64().is_none()) {
            return Err(err(
                "metrics-snapshot counters must be unsigned integers".to_string()
            ));
        }
        if let Some(runtime) = v.get("runtime") {
            let Some(metrics) = runtime.as_obj() else {
                return Err(err(
                    "metrics-snapshot \"runtime\" must be an object".to_string()
                ));
            };
            for (name, metric) in metrics {
                if let Some(buckets) = metric.get("buckets") {
                    validate_histogram(name, metric, buckets).map_err(err)?;
                }
            }
        }
    }
    Ok(ty.to_string())
}

/// Check one `runtime` histogram dump: `count`/`sum` unsigned, `buckets`
/// an array of `[bucket index, count]` pairs with indices inside the log2
/// bucket range.
fn validate_histogram(name: &str, metric: &Value, buckets: &Value) -> Result<(), String> {
    for key in ["count", "sum"] {
        if metric.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("histogram {name:?} lacks unsigned field {key:?}"));
        }
    }
    let Some(pairs) = buckets.as_arr() else {
        return Err(format!("histogram {name:?} buckets must be an array"));
    };
    for pair in pairs {
        let ok = pair.as_arr().is_some_and(|p| {
            p.len() == 2
                && p.iter().all(|x| x.as_u64().is_some())
                && p[0].as_u64().unwrap() < crate::metrics::HISTOGRAM_BUCKETS as u64
        });
        if !ok {
            return Err(format!(
                "histogram {name:?} buckets must be [index < {}, count] pairs",
                crate::metrics::HISTOGRAM_BUCKETS
            ));
        }
    }
    Ok(())
}

/// Validate a whole JSONL trace.
///
/// # Errors
/// Returns the first offending line's [`SchemaError`]. An empty input is an
/// error (a trace always has its header).
pub fn validate_trace(text: &str) -> Result<TraceSummary, SchemaError> {
    let mut summary = TraceSummary::default();
    let mut any = false;
    for (ix, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        any = true;
        let ty = validate_line(ix + 1, line)?;
        summary.events += 1;
        match summary.by_type.iter_mut().find(|(t, _)| *t == ty) {
            Some((_, n)) => *n += 1,
            None => summary.by_type.push((ty, 1)),
        }
    }
    if !any {
        return Err(SchemaError {
            line: 1,
            message: "empty trace (missing trace-header)".to_string(),
        });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn smoke_trace() -> String {
        let t = Tracer::in_memory();
        t.emit(
            "evolution-start",
            [
                ("population", Value::UInt(8)),
                ("generations", Value::UInt(2)),
                ("start_gen", Value::UInt(0)),
                ("threads", Value::UInt(1)),
                ("resumed", Value::Bool(false)),
            ],
        );
        t.emit(
            "eval",
            [
                ("gen", Value::UInt(0)),
                ("genome", Value::str("(mul 2.0 x)")),
                ("case", Value::UInt(0)),
                ("outcome", Value::str(OUTCOME_SCORE)),
                ("score", Value::Num(1.25)),
                ("dur_ns", Value::UInt(1000)),
            ],
        );
        t.emit(
            "generation",
            [
                ("gen", Value::UInt(0)),
                ("subset", Value::Arr(vec![Value::UInt(0)])),
                ("evals", Value::UInt(1)),
                ("cache_hits", Value::UInt(0)),
                ("best_fitness", Value::Num(1.25)),
                ("mean_fitness", Value::Num(1.25)),
                ("best_size", Value::UInt(3)),
                ("dur_ns", Value::UInt(2000)),
            ],
        );
        t.lines().unwrap().join("\n")
    }

    #[test]
    fn well_formed_trace_validates() {
        let summary = validate_trace(&smoke_trace()).unwrap();
        assert_eq!(summary.events, 4);
        assert_eq!(summary.by_type[0], ("trace-header".to_string(), 1));
    }

    #[test]
    fn header_must_come_first_and_match_version() {
        let trace = smoke_trace();
        let mut lines: Vec<&str> = trace.lines().collect();
        lines.swap(0, 1);
        let err = validate_trace(&lines.join("\n")).unwrap_err();
        assert!(err.message.contains("trace-header"), "{err}");

        let other = trace.replace("run-trace.v1", "run-trace.v0");
        let err = validate_trace(&other).unwrap_err();
        assert!(err.message.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn unknown_types_and_missing_fields_are_rejected() {
        let header = smoke_trace().lines().next().unwrap().to_string();
        let bad_type = format!("{header}\n{{\"type\":\"mystery\",\"ts\":1}}");
        assert!(validate_trace(&bad_type)
            .unwrap_err()
            .message
            .contains("unknown event type"));

        let missing = format!("{header}\n{{\"type\":\"checkpoint\",\"ts\":1,\"gen\":0}}");
        assert!(validate_trace(&missing)
            .unwrap_err()
            .message
            .contains("dur_ns"));

        let mistyped =
            format!("{header}\n{{\"type\":\"checkpoint\",\"ts\":1,\"gen\":\"x\",\"dur_ns\":0}}");
        assert!(validate_trace(&mistyped)
            .unwrap_err()
            .message
            .contains("not a UInt"));
    }

    #[test]
    fn scored_eval_requires_a_score() {
        let header = smoke_trace().lines().next().unwrap().to_string();
        let bad = format!(
            "{header}\n{{\"type\":\"eval\",\"ts\":1,\"gen\":0,\"genome\":\"g\",\"case\":0,\
             \"outcome\":\"score\",\"dur_ns\":1}}"
        );
        assert!(validate_trace(&bad)
            .unwrap_err()
            .message
            .contains("lacks a numeric"));
        // A failed eval needs no score.
        let ok = format!(
            "{header}\n{{\"type\":\"eval\",\"ts\":1,\"gen\":0,\"genome\":\"g\",\"case\":0,\
             \"outcome\":\"budget\",\"dur_ns\":1}}"
        );
        validate_trace(&ok).unwrap();
    }

    #[test]
    fn empty_and_garbage_traces_are_rejected() {
        assert!(validate_trace("").is_err());
        assert!(validate_trace("not json").is_err());
    }

    #[test]
    fn sim_tier_attribute_is_optional_but_typed() {
        let header = smoke_trace().lines().next().unwrap().to_string();
        let sim = |tier: &str| {
            format!(
                "{header}\n{{\"type\":\"sim\",\"ts\":1,\"cycles\":10,\"insts\":4,\
                 \"dur_ns\":100{tier}}}"
            )
        };
        // Tier-less sim events stay valid (pre-tier traces).
        validate_trace(&sim("")).unwrap();
        // Both tier names validate.
        validate_trace(&sim(",\"tier\":\"fast\"")).unwrap();
        validate_trace(&sim(",\"tier\":\"reference\"")).unwrap();
        // Unknown tier names and non-strings are rejected.
        assert!(validate_trace(&sim(",\"tier\":\"jit\""))
            .unwrap_err()
            .message
            .contains("tier"));
        assert!(validate_trace(&sim(",\"tier\":3"))
            .unwrap_err()
            .message
            .contains("tier"));
    }

    fn front_line(size: u64, points: &str) -> String {
        let header = smoke_trace().lines().next().unwrap().to_string();
        format!(
            "{header}\n{{\"type\":\"pareto-front\",\"ts\":3,\"gen\":1,\"size\":{size},\
             \"hypervolume\":1200,\"points\":[{points}]}}"
        )
    }

    #[test]
    fn pareto_front_events_validate() {
        let point = "{\"plan\":\"regalloc,schedule\",\"expr\":\"(mul 2.0 x)\",\
                     \"objectives\":[120,34,68]}";
        validate_trace(&front_line(1, point)).unwrap();
        // An empty front is legal (size 0, no points).
        validate_trace(&front_line(0, "")).unwrap();
    }

    #[test]
    fn malformed_pareto_fronts_are_rejected() {
        // Size must agree with the point count.
        let point = "{\"plan\":\"p\",\"expr\":\"e\",\"objectives\":[1]}";
        assert!(validate_trace(&front_line(2, point))
            .unwrap_err()
            .message
            .contains("disagrees"));
        // Points must carry plan, expr, and unsigned objectives.
        let no_plan = "{\"expr\":\"e\",\"objectives\":[1]}";
        assert!(validate_trace(&front_line(1, no_plan))
            .unwrap_err()
            .message
            .contains("plan"));
        let bad_obj = "{\"plan\":\"p\",\"expr\":\"e\",\"objectives\":[-4]}";
        assert!(validate_trace(&front_line(1, bad_obj))
            .unwrap_err()
            .message
            .contains("objectives"));
        let empty_obj = "{\"plan\":\"p\",\"expr\":\"e\",\"objectives\":[]}";
        assert!(validate_trace(&front_line(1, empty_obj)).is_err());
    }

    fn snapshot_line(counters: &str, runtime: &str) -> String {
        let header = smoke_trace().lines().next().unwrap().to_string();
        format!(
            "{header}\n{{\"type\":\"metrics-snapshot\",\"ts\":9,\"seq\":0,\"gen\":1,\
             \"counters\":{counters}{runtime}}}"
        )
    }

    #[test]
    fn metrics_snapshots_validate_and_tolerate_unknown_attrs() {
        // A full snapshot with a runtime histogram dump.
        let ok = snapshot_line(
            "{\"evaluations\":12,\"cache_hits\":3}",
            ",\"runtime\":{\"metaopt_evaluations_total\":12,\
             \"metaopt_eval_latency_ns\":{\"count\":12,\"sum\":480,\"buckets\":[[5,9],[6,3]]}}",
        );
        validate_trace(&ok).unwrap();
        // `runtime` is optional (emission may dump counters only).
        validate_trace(&snapshot_line("{\"evaluations\":0}", "")).unwrap();
        // Unknown extra attributes are tolerated (additive-within-v1).
        let extra = snapshot_line("{\"evaluations\":1}", ",\"experimental_zzz\":\"yes\"");
        validate_trace(&extra).unwrap();
    }

    #[test]
    fn malformed_metrics_snapshots_are_rejected() {
        // Missing required field.
        let header = smoke_trace().lines().next().unwrap().to_string();
        let missing =
            format!("{header}\n{{\"type\":\"metrics-snapshot\",\"ts\":1,\"seq\":0,\"gen\":0}}");
        assert!(validate_trace(&missing)
            .unwrap_err()
            .message
            .contains("counters"));
        // Counters must be unsigned integers.
        let signed = snapshot_line("{\"evaluations\":-3}", "");
        assert!(validate_trace(&signed)
            .unwrap_err()
            .message
            .contains("unsigned"));
        // Runtime must be an object.
        let bad_runtime = snapshot_line("{}", ",\"runtime\":[1,2]");
        assert!(validate_trace(&bad_runtime)
            .unwrap_err()
            .message
            .contains("must be an object"));
        // Histogram buckets must be [index, count] pairs...
        let bad_pair = snapshot_line(
            "{}",
            ",\"runtime\":{\"h\":{\"count\":1,\"sum\":2,\"buckets\":[[5]]}}",
        );
        assert!(validate_trace(&bad_pair)
            .unwrap_err()
            .message
            .contains("pairs"));
        // ...with in-range indices...
        let bad_index = snapshot_line(
            "{}",
            ",\"runtime\":{\"h\":{\"count\":1,\"sum\":2,\"buckets\":[[99,1]]}}",
        );
        assert!(validate_trace(&bad_index)
            .unwrap_err()
            .message
            .contains("pairs"));
        // ...and count/sum alongside them.
        let no_count = snapshot_line("{}", ",\"runtime\":{\"h\":{\"buckets\":[[5,1]]}}");
        assert!(validate_trace(&no_count)
            .unwrap_err()
            .message
            .contains("count"));
    }
}
