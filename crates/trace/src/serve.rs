//! An optional, std-only `/metrics` scrape endpoint.
//!
//! [`serve`] binds a [`std::net::TcpListener`] on a background thread and
//! answers every `GET /metrics` with the registry rendered in Prometheus
//! text exposition format 0.0.4 ([`crate::metrics::MetricsRegistry::render_prometheus`]).
//! The server is read-only derived state: it never feeds back into the run,
//! so scraping cannot perturb determinism.
//!
//! The implementation is deliberately minimal — HTTP/1.0 semantics, one
//! connection at a time, `Connection: close` — because its only clients are
//! `curl` in CI and a Prometheus scraper on a trusted host.

use crate::metrics::MetricsRegistry;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint. Dropping the handle (or calling
/// [`MetricsServer::shutdown`]) stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when serving on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() by poking the listener ourselves.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `registry` over HTTP at `addr` (e.g. `127.0.0.1:9184`, or port 0
/// for an OS-assigned port) on a background thread.
///
/// # Errors
/// Fails when the address cannot be bound.
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: MetricsRegistry,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("metaopt-metrics".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A hung client must not wedge the endpoint.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = answer(stream, &registry);
                }
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn answer(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so the client sees a clean close.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", registry.render_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_prometheus_exposition() {
        let registry = MetricsRegistry::new();
        registry.counter("metaopt_evaluations_total").add(7);
        registry.histogram("metaopt_eval_latency_ns").record(1000);
        let mut server = serve("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr();

        let response = fetch(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response
            .contains("# TYPE metaopt_evaluations_total counter\nmetaopt_evaluations_total 7\n"));
        assert!(response.contains("metaopt_eval_latency_ns_bucket{le=\"+Inf\"} 1\n"));

        // Scrapes observe live updates.
        registry.counter("metaopt_evaluations_total").add(3);
        assert!(fetch(addr, "/metrics").contains("metaopt_evaluations_total 10\n"));

        assert!(fetch(addr, "/nope").starts_with("HTTP/1.0 404"));

        server.shutdown();
        // After shutdown the port stops answering (connect may succeed
        // briefly on some platforms; a second shutdown is a no-op).
        server.shutdown();
    }
}
