//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the small subset of the criterion API the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! timed batches and reports the best per-iteration wall-clock time (the
//! minimum is the most noise-robust single summary for a quick harness).
//! When invoked by `cargo test` (any `--test`-ish argument present), each
//! benchmark body runs exactly once as a smoke test.

use std::hint;
use std::time::Instant;

/// Opaque value barrier, preventing the optimizer from deleting bench bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs the closure under timing on behalf of [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    smoke_only: bool,
    /// Best per-iteration seconds from the last [`Bencher::iter`] call
    /// (`None` in smoke mode).
    best: Option<f64>,
}

impl Bencher {
    /// Time repeated calls of `f`; [`Criterion::bench_function`] reports the
    /// per-iteration summary. Matches criterion's signature: the closure's
    /// return value is black-boxed and discarded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_only {
            black_box(f());
            return;
        }
        // Calibrate a batch size so one timed batch is ~1ms or more.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t.elapsed().as_micros() >= 1000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            best = best.min(t.elapsed().as_secs_f64() / batch as f64);
        }
        self.best = Some(best);
    }
}

/// Benchmark registry/configuration entry point.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness passes `--test` (and test filters);
        // in that mode benchmarks become one-shot smoke runs.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            smoke_only,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            smoke_only: self.smoke_only,
            best: None,
        };
        if self.smoke_only {
            f(&mut b);
            println!("{name:<40} ok (smoke)");
        } else {
            f(&mut b);
            match b.best {
                Some(s) => println!("{name:<40} {:>12.3} µs/iter (best)", s * 1e6),
                None => println!("{name:<40} (no measurement)"),
            }
        }
        self
    }
}

/// Declare a benchmark group: either `criterion_group!(name, target, ...)` or
/// the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64));
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn timing_mode_measures() {
        let mut b = Bencher {
            samples: 2,
            smoke_only: false,
            best: None,
        };
        b.iter(|| black_box(1u64).wrapping_mul(3));
        let t = b.best.unwrap();
        assert!(t.is_finite() && t >= 0.0);
    }
}
