//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `Config::cases` deterministic random cases
//! (seeded per case index). There is **no shrinking** — a failing case
//! panics with the generated values in scope, which is enough for CI.

pub mod test_runner {
    //! Case-count configuration and per-case RNG derivation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic RNG for case number `case`.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(0xC0FF_EE00_u64 ^ ((case as u64) << 17) ^ case as u64)
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: up to `depth` levels of `f` applied over this
        /// leaf strategy (the `_size`/`_branch` hints are ignored).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                let rec = f(cur.clone()).boxed();
                cur = union(vec![(1, cur), (2, rec)]);
            }
            cur
        }

        /// Type-erase into a clonable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Weighted union of strategies (backs `prop_oneof!`).
    pub fn union<V: 'static>(arms: Vec<(u32, BoxedStrategy<V>)>) -> BoxedStrategy<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        BoxedStrategy(Rc::new(move |rng| {
            let mut draw = rng.random_range(0..total);
            for (w, s) in &arms {
                if draw < *w {
                    return s.generate(rng);
                }
                draw -= w;
            }
            unreachable!("weighted draw out of range")
        }))
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S1);
    impl_tuple_strategy!(S1, S2);
    impl_tuple_strategy!(S1, S2, S3);
    impl_tuple_strategy!(S1, S2, S3, S4);
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Random;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    <$t as Random>::random(rng)
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    /// Strategy generating arbitrary values of `T`.
    #[derive(Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length specifications accepted by [`vec`].
    pub trait IntoLen {
        /// Draw a concrete length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLen for core::ops::Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoLen for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(__case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, any::<bool>()), v in crate::collection::vec(0i64..5, 1..4)) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honored(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn size(t: &T) -> usize {
            match t {
                T::Leaf(n) => (*n >= 0) as usize,
                T::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let strat = (0i64..100)
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop_oneof![
                    1 => inner.clone().prop_map(|t| T::Node(Box::new(t.clone()), Box::new(t))),
                    1 => inner,
                ]
            });
        let mut rng = crate::test_runner::case_rng(0);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(size(&strat.generate(&mut rng)));
        }
        assert!(max > 1, "recursion never fired");
    }
}
