//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.10 API the workspace uses:
//! [`Rng`] / [`RngExt`] / [`SeedableRng`], [`rngs::StdRng`], `random::<T>()`,
//! `random_range` over integer and float ranges, and `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, high-quality enough for the GP search and the statistical tests
//! in this repository. It makes no cryptographic claims whatsoever.

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`Rng`] (rand 0.10 splits these
/// from the core trait; a blanket impl provides them everywhere).
pub trait RngExt: Rng {
    /// Sample a value of `T` from the standard distribution (uniform over
    /// the type's range; `[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            f64::random(self) < p
        }
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`RngExt::random`].
pub trait Random {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn span_index<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    // Lemire-style scaling: multiply-shift maps a 64-bit word onto [0, span).
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + span_index(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                (s as i128 + span_index(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, usize, i8, i16, i32, i64);

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u128;
        self.start + span_index(rng, span) as u64
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's raw xoshiro256++ state, for checkpointing.
        ///
        /// Not part of the real rand API: this stand-in exposes the state so
        /// long-running searches can serialize their RNG mid-stream and
        /// [`StdRng::from_state`] can resume the exact sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot, continuing
        /// the stream exactly where the snapshot was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(-10..11);
            assert!((-10..11).contains(&v));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[rng.random_range(0..8usize)] += 1;
        }
        for h in hits {
            assert!((700..1300).contains(&h), "bucket count {h} far from 1000");
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let trues = (0..1000).filter(|_| rng.random_bool(0.3)).count();
        assert!((200..400).contains(&trues), "{trues}");
    }
}

#[cfg(test)]
mod state_tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn state_snapshot_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }
}
